package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"distcover/internal/telemetry"
)

// latencyBuckets are the upper bounds (seconds) of the solve latency
// histogram, spanning sub-millisecond simulator runs to multi-second
// congest-over-TCP runs.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// phaseBuckets are the upper bounds (seconds) of the per-phase and
// cluster-exchange histograms. Phases are much shorter than whole solves
// (a vertex phase of a small instance is microseconds), so the scale
// starts three decades lower.
var phaseBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5,
}

// histogram is a fixed-bucket latency histogram (non-cumulative counts;
// cumulation happens at exposition time). Callers hold Metrics.mu.
type histogram struct {
	buckets []float64
	counts  []int64
	sum     float64
	count   int64
}

func newHistogram(buckets []float64) *histogram {
	return &histogram{buckets: buckets, counts: make([]int64, len(buckets))}
}

func (h *histogram) observe(v float64) {
	h.sum += v
	h.count++
	for i, le := range h.buckets {
		if v <= le {
			h.counts[i]++
			break
		}
	}
}

// writeHistogram renders one labeled histogram series in exposition
// order (bucket lines cumulative, then sum and count). labels is the
// rendered label block including braces minus the le pair, e.g.
// `engine="flat",phase="vertex"`, or "" for an unlabeled series.
func writeHistogram(w io.Writer, name, labels string, h *histogram) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	cumulative := int64(0)
	for i, le := range h.buckets {
		cumulative += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%g\"} %d\n", name, labels, sep, le, cumulative)
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, h.count)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, h.sum, name, h.count)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n%s_count{%s} %d\n", name, labels, h.sum, name, labels, h.count)
	}
}

// Metrics aggregates the service counters exported at GET /metrics in
// Prometheus text exposition format. All methods are safe for concurrent
// use; gauges (queue depth, cache size) are sampled at scrape time by the
// server, not stored here.
type Metrics struct {
	mu              sync.Mutex
	solvesOK        int64
	solvesErr       int64
	cacheHits       int64
	cacheMisses     int64
	backpressured   int64 // submits rejected with 429
	jobsSubmitted   int64
	batchRequests   int64
	sessionsCreated int64
	sessionUpdates  int64
	peerCacheHits   int64 // peer instance-cache outcomes (peer processes)
	peerCacheMisses int64
	sessionsRecov   int64 // sessions rehydrated from the WAL
	walRecords      int64
	walSnapshots    int64
	ringForwards    int64   // requests proxied to their ring owner
	ringRedirects   int64   // 307s pointing clients at the owner
	ringHops        int64   // hop-marked arrivals (forwarded/redirected here once)
	ringTakeovers   int64   // sessions adopted from a dead member's WAL
	ringDowns       int64   // times a ring member was marked unreachable
	bucketCounts    []int64 // parallel to latencyBuckets, non-cumulative
	latencySum      float64 // seconds
	latencyCount    int64

	// Telemetry-fed series (see SolveTracer/ClusterTracer): per-phase
	// solver timings keyed by engine|phase, per-peer cluster exchange
	// waits, cluster wire volume by direction, and queue wait.
	phaseHist    map[string]*histogram // key: engine + "|" + phase
	exchangeHist map[string]*histogram // key: peer address
	clusterBytes map[string]int64      // key: direction (sent/received)
	clusterFrame map[string]int64      // key: direction
	queueWait    *histogram
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{
		bucketCounts: make([]int64, len(latencyBuckets)),
		phaseHist:    make(map[string]*histogram),
		exchangeHist: make(map[string]*histogram),
		clusterBytes: map[string]int64{"sent": 0, "received": 0},
		clusterFrame: map[string]int64{"sent": 0, "received": 0},
		queueWait:    newHistogram(latencyBuckets),
	}
}

func (m *Metrics) recordPhase(engine, phase string, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	key := engine + "|" + phase
	h := m.phaseHist[key]
	if h == nil {
		h = newHistogram(phaseBuckets)
		m.phaseHist[key] = h
	}
	h.observe(seconds)
}

func (m *Metrics) recordExchange(peer string, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.exchangeHist[peer]
	if h == nil {
		h = newHistogram(phaseBuckets)
		m.exchangeHist[peer] = h
	}
	h.observe(seconds)
}

func (m *Metrics) recordClusterFrame(dir string, bytes int) {
	m.mu.Lock()
	m.clusterBytes[dir] += int64(bytes)
	m.clusterFrame[dir]++
	m.mu.Unlock()
}

func (m *Metrics) recordQueueWait(d time.Duration) {
	m.mu.Lock()
	m.queueWait.observe(d.Seconds())
	m.mu.Unlock()
}

// tracerAdapter implements telemetry.Tracer by feeding the hooks into
// the metrics registry. Peer "" is the cluster coordinator as seen from
// a peer process; it is normalized so peer processes and coordinators
// export the same label shape.
type tracerAdapter struct {
	m      *Metrics
	engine string
}

func normalizePeer(peer string) string {
	if peer == "" {
		return "coordinator"
	}
	return peer
}

func (t tracerAdapter) Phase(_ int, phase string, d, _ time.Duration) {
	t.m.recordPhase(t.engine, phase, d.Seconds())
}

func (t tracerAdapter) Exchange(peer, _ string, _ int, wait time.Duration) {
	t.m.recordExchange(normalizePeer(peer), wait.Seconds())
}

func (t tracerAdapter) Frame(_, dir, _ string, bytes int) {
	t.m.recordClusterFrame(dir, bytes)
}

func (t tracerAdapter) Protocol(int, int64) {} // report-only; no metric

// InstanceCache implements telemetry.CacheTracer: on peer processes the
// cluster protocol reports whether each setup's instance hash hit the
// content-addressed cache.
func (t tracerAdapter) InstanceCache(hit bool, _ int) {
	t.m.recordPeerCache(hit)
}

// SolveTracer returns a telemetry sink that aggregates one solve's phase
// timings into coverd_solve_phase_seconds{engine=...} (and, for cluster
// solves, the exchange and wire-volume series). The worker pool attaches
// one per solve via distcover.WithTracer.
func (m *Metrics) SolveTracer(engine string) telemetry.Tracer {
	return tracerAdapter{m: m, engine: engine}
}

// ClusterTracer returns the telemetry sink a coverd peer process plugs
// into cluster.Peer.Tracer: partition-solve phase timings appear under
// engine="cluster-peer" and exchange waits under peer="coordinator".
func (m *Metrics) ClusterTracer() telemetry.Tracer {
	return tracerAdapter{m: m, engine: "cluster-peer"}
}

func (m *Metrics) recordSolve(seconds float64, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err != nil {
		m.solvesErr++
		return
	}
	m.solvesOK++
	m.latencySum += seconds
	m.latencyCount++
	for i, le := range latencyBuckets {
		if seconds <= le {
			m.bucketCounts[i]++
			break
		}
	}
}

func (m *Metrics) recordCache(hit bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if hit {
		m.cacheHits++
	} else {
		m.cacheMisses++
	}
}

func (m *Metrics) recordBackpressure() {
	m.mu.Lock()
	m.backpressured++
	m.mu.Unlock()
}

func (m *Metrics) recordSubmit() {
	m.mu.Lock()
	m.jobsSubmitted++
	m.mu.Unlock()
}

func (m *Metrics) recordBatch() {
	m.mu.Lock()
	m.batchRequests++
	m.mu.Unlock()
}

func (m *Metrics) recordSessionCreate() {
	m.mu.Lock()
	m.sessionsCreated++
	m.mu.Unlock()
}

func (m *Metrics) recordSessionUpdate() {
	m.mu.Lock()
	m.sessionUpdates++
	m.mu.Unlock()
}

func (m *Metrics) recordPeerCache(hit bool) {
	m.mu.Lock()
	if hit {
		m.peerCacheHits++
	} else {
		m.peerCacheMisses++
	}
	m.mu.Unlock()
}

func (m *Metrics) recordSessionRecovered() {
	m.mu.Lock()
	m.sessionsRecov++
	m.mu.Unlock()
}

func (m *Metrics) recordWALRecord() {
	m.mu.Lock()
	m.walRecords++
	m.mu.Unlock()
}

func (m *Metrics) recordWALSnapshot() {
	m.mu.Lock()
	m.walSnapshots++
	m.mu.Unlock()
}

func (m *Metrics) recordRingForward() {
	m.mu.Lock()
	m.ringForwards++
	m.mu.Unlock()
}

func (m *Metrics) recordRingRedirect() {
	m.mu.Lock()
	m.ringRedirects++
	m.mu.Unlock()
}

func (m *Metrics) recordRingHop() {
	m.mu.Lock()
	m.ringHops++
	m.mu.Unlock()
}

func (m *Metrics) recordRingTakeover() {
	m.mu.Lock()
	m.ringTakeovers++
	m.mu.Unlock()
}

func (m *Metrics) recordRingDown() {
	m.mu.Lock()
	m.ringDowns++
	m.mu.Unlock()
}

// Snapshot is a point-in-time copy of the counters, used by tests and by
// operators who prefer JSON over the Prometheus endpoint.
type Snapshot struct {
	SolvesOK        int64   `json:"solves_ok"`
	SolvesErr       int64   `json:"solves_err"`
	CacheHits       int64   `json:"cache_hits"`
	CacheMisses     int64   `json:"cache_misses"`
	Backpressured   int64   `json:"backpressured"`
	JobsSubmitted   int64   `json:"jobs_submitted"`
	BatchRequests   int64   `json:"batch_requests"`
	SessionsCreated int64   `json:"sessions_created"`
	SessionUpdates  int64   `json:"session_updates"`
	PeerCacheHits   int64   `json:"peer_cache_hits"`
	PeerCacheMisses int64   `json:"peer_cache_misses"`
	SessionsRecov   int64   `json:"sessions_recovered"`
	WALRecords      int64   `json:"wal_records"`
	WALSnapshots    int64   `json:"wal_snapshots"`
	RingForwards    int64   `json:"ring_forwards"`
	RingRedirects   int64   `json:"ring_redirects"`
	RingHops        int64   `json:"ring_hops"`
	RingTakeovers   int64   `json:"ring_takeovers"`
	RingDowns       int64   `json:"ring_member_down"`
	LatencySum      float64 `json:"latency_sum_seconds"`
	LatencyCount    int64   `json:"latency_count"`

	buckets []int64 // non-cumulative histogram counts, parallel to latencyBuckets
}

// Snapshot returns a consistent copy of all counters.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Snapshot{
		buckets:         append([]int64(nil), m.bucketCounts...),
		SolvesOK:        m.solvesOK,
		SolvesErr:       m.solvesErr,
		CacheHits:       m.cacheHits,
		CacheMisses:     m.cacheMisses,
		Backpressured:   m.backpressured,
		JobsSubmitted:   m.jobsSubmitted,
		BatchRequests:   m.batchRequests,
		SessionsCreated: m.sessionsCreated,
		SessionUpdates:  m.sessionUpdates,
		PeerCacheHits:   m.peerCacheHits,
		PeerCacheMisses: m.peerCacheMisses,
		SessionsRecov:   m.sessionsRecov,
		WALRecords:      m.walRecords,
		WALSnapshots:    m.walSnapshots,
		RingForwards:    m.ringForwards,
		RingRedirects:   m.ringRedirects,
		RingHops:        m.ringHops,
		RingTakeovers:   m.ringTakeovers,
		RingDowns:       m.ringDowns,
		LatencySum:      m.latencySum,
		LatencyCount:    m.latencyCount,
	}
}

// copyHist returns a render-safe copy of h; callers hold Metrics.mu.
func copyHist(h *histogram) *histogram {
	return &histogram{
		buckets: h.buckets,
		counts:  append([]int64(nil), h.counts...),
		sum:     h.sum,
		count:   h.count,
	}
}

// writeTelemetry renders the telemetry-fed families. HELP/TYPE headers
// are emitted even when a family has no series yet, so scrapers (and the
// CI exposition check) always see every documented metric name.
func (m *Metrics) writeTelemetry(w io.Writer) {
	m.mu.Lock()
	phases := make(map[string]*histogram, len(m.phaseHist))
	for k, h := range m.phaseHist {
		phases[k] = copyHist(h)
	}
	exchanges := make(map[string]*histogram, len(m.exchangeHist))
	for k, h := range m.exchangeHist {
		exchanges[k] = copyHist(h)
	}
	bytesByDir := map[string]int64{"sent": m.clusterBytes["sent"], "received": m.clusterBytes["received"]}
	framesByDir := map[string]int64{"sent": m.clusterFrame["sent"], "received": m.clusterFrame["received"]}
	queueWait := copyHist(m.queueWait)
	m.mu.Unlock()

	fmt.Fprintf(w, "# HELP coverd_solve_phase_seconds Solver wall time per algorithm phase (init/vertex/edge/gather/protocol), labeled by engine.\n# TYPE coverd_solve_phase_seconds histogram\n")
	for _, key := range sortedKeys(phases) {
		engine, phase, _ := cutKey(key)
		labels := fmt.Sprintf("engine=%q,phase=%q", engine, phase)
		writeHistogram(w, "coverd_solve_phase_seconds", labels, phases[key])
	}

	fmt.Fprintf(w, "# HELP coverd_cluster_exchange_seconds Coordinator wait per cluster boundary/coverage exchange, labeled by peer address (peer=\"coordinator\" on peer processes).\n# TYPE coverd_cluster_exchange_seconds histogram\n")
	for _, peer := range sortedKeys(exchanges) {
		writeHistogram(w, "coverd_cluster_exchange_seconds", fmt.Sprintf("peer=%q", peer), exchanges[peer])
	}

	fmt.Fprintf(w, "# HELP coverd_cluster_boundary_bytes_total Cluster protocol wire bytes (frame headers included) by direction.\n# TYPE coverd_cluster_boundary_bytes_total counter\n")
	for _, dir := range []string{"received", "sent"} {
		fmt.Fprintf(w, "coverd_cluster_boundary_bytes_total{direction=%q} %d\n", dir, bytesByDir[dir])
	}

	fmt.Fprintf(w, "# HELP coverd_cluster_frames_total Cluster protocol frames by direction.\n# TYPE coverd_cluster_frames_total counter\n")
	for _, dir := range []string{"received", "sent"} {
		fmt.Fprintf(w, "coverd_cluster_frames_total{direction=%q} %d\n", dir, framesByDir[dir])
	}

	fmt.Fprintf(w, "# HELP coverd_job_queue_wait_seconds Time jobs spent queued before a worker picked them up.\n# TYPE coverd_job_queue_wait_seconds histogram\n")
	writeHistogram(w, "coverd_job_queue_wait_seconds", "", queueWait)
}

func sortedKeys(m map[string]*histogram) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// cutKey splits an engine|phase histogram key.
func cutKey(key string) (engine, phase string, ok bool) {
	for i := 0; i < len(key); i++ {
		if key[i] == '|' {
			return key[:i], key[i+1:], true
		}
	}
	return key, "", false
}

type gauge struct {
	name, help string
	value      float64
}

// writePrometheus renders all counters plus the supplied gauges in the
// Prometheus text exposition format (version 0.0.4).
func (m *Metrics) writePrometheus(w io.Writer, gauges []gauge) {
	s := m.Snapshot()
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	fmt.Fprintf(w, "# HELP coverd_solves_total Completed solve attempts by outcome.\n# TYPE coverd_solves_total counter\n")
	fmt.Fprintf(w, "coverd_solves_total{outcome=\"ok\"} %d\n", s.SolvesOK)
	fmt.Fprintf(w, "coverd_solves_total{outcome=\"error\"} %d\n", s.SolvesErr)
	counter("coverd_cache_hits_total", "Solve requests served from the instance-result cache.", s.CacheHits)
	counter("coverd_cache_misses_total", "Solve requests that missed the instance-result cache.", s.CacheMisses)
	counter("coverd_backpressure_total", "Submits rejected with 429 because the job queue was full.", s.Backpressured)
	counter("coverd_jobs_submitted_total", "Jobs accepted into the queue.", s.JobsSubmitted)
	counter("coverd_batch_requests_total", "Batch solve requests received.", s.BatchRequests)
	counter("coverd_sessions_created_total", "Incremental sessions opened.", s.SessionsCreated)
	counter("coverd_session_updates_total", "Session delta batches applied.", s.SessionUpdates)
	counter("coverd_peer_instance_cache_hits_total", "Cluster setups whose instance hash was already in this peer's content-addressed cache.", s.PeerCacheHits)
	counter("coverd_peer_instance_cache_misses_total", "Cluster setups that had to re-sync the full instance to this peer.", s.PeerCacheMisses)
	counter("coverd_sessions_recovered_total", "Sessions rehydrated from the write-ahead log at startup.", s.SessionsRecov)
	counter("coverd_wal_records_total", "Records appended to the session write-ahead log.", s.WALRecords)
	counter("coverd_wal_snapshots_total", "WAL compaction snapshots written.", s.WALSnapshots)
	counter("coverd_ring_forwards_total", "Misrouted requests proxied to their ring owner.", s.RingForwards)
	counter("coverd_ring_redirects_total", "Misrouted bodyless requests redirected (307) to their ring owner.", s.RingRedirects)
	counter("coverd_ring_hops_total", "Hop-marked arrivals: requests another ring member forwarded or redirected here.", s.RingHops)
	counter("coverd_ring_takeovers_total", "Sessions adopted from a dead ring member's WAL directory.", s.RingTakeovers)
	counter("coverd_ring_member_down_total", "Times a ring member was marked unreachable.", s.RingDowns)

	fmt.Fprintf(w, "# HELP coverd_solve_seconds Solver wall time of successful solves.\n# TYPE coverd_solve_seconds histogram\n")
	cumulative := int64(0)
	for i, le := range latencyBuckets {
		cumulative += s.buckets[i]
		fmt.Fprintf(w, "coverd_solve_seconds_bucket{le=\"%g\"} %d\n", le, cumulative)
	}
	fmt.Fprintf(w, "coverd_solve_seconds_bucket{le=\"+Inf\"} %d\n", s.LatencyCount)
	fmt.Fprintf(w, "coverd_solve_seconds_sum %g\n", s.LatencySum)
	fmt.Fprintf(w, "coverd_solve_seconds_count %d\n", s.LatencyCount)

	m.writeTelemetry(w)

	sort.Slice(gauges, func(i, j int) bool { return gauges[i].name < gauges[j].name })
	for _, g := range gauges {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", g.name, g.help, g.name, g.name, g.value)
	}
}
