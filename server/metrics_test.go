package server_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"distcover/client"
	"distcover/server"
	"distcover/server/api"
)

// documentedMetricFamilies is the full documented metric surface of GET
// /metrics (see README). The exposition test fails if any family is
// renamed, dropped, or served without HELP/TYPE headers — the contract
// dashboards scrape against.
var documentedMetricFamilies = map[string]string{
	"coverd_solves_total":                     "counter",
	"coverd_cache_hits_total":                 "counter",
	"coverd_cache_misses_total":               "counter",
	"coverd_backpressure_total":               "counter",
	"coverd_jobs_submitted_total":             "counter",
	"coverd_batch_requests_total":             "counter",
	"coverd_sessions_created_total":           "counter",
	"coverd_session_updates_total":            "counter",
	"coverd_peer_instance_cache_hits_total":   "counter",
	"coverd_peer_instance_cache_misses_total": "counter",
	"coverd_sessions_recovered_total":         "counter",
	"coverd_wal_records_total":                "counter",
	"coverd_wal_snapshots_total":              "counter",
	"coverd_ring_forwards_total":              "counter",
	"coverd_ring_redirects_total":             "counter",
	"coverd_ring_hops_total":                  "counter",
	"coverd_ring_takeovers_total":             "counter",
	"coverd_ring_member_down_total":           "counter",
	"coverd_ring_members":                     "gauge",
	"coverd_solve_seconds":                    "histogram",
	"coverd_solve_phase_seconds":              "histogram",
	"coverd_cluster_exchange_seconds":         "histogram",
	"coverd_cluster_boundary_bytes_total":     "counter",
	"coverd_cluster_frames_total":             "counter",
	"coverd_job_queue_wait_seconds":           "histogram",
	"coverd_queue_depth":                      "gauge",
	"coverd_queue_capacity":                   "gauge",
	"coverd_workers":                          "gauge",
	"coverd_cache_entries":                    "gauge",
	"coverd_sessions":                         "gauge",
	"coverd_session_bytes":                    "gauge",
	"coverd_session_bytes_budget":             "gauge",
}

// TestMetricsExposition runs solves on two engines plus a traced solve,
// then asserts the /metrics output (a) parses as Prometheus text
// exposition 0.0.4, (b) declares every documented family with the
// documented type, and (c) carries the expected telemetry series with
// their engine/phase/direction labels.
func TestMetricsExposition(t *testing.T) {
	srv := server.New(server.Config{Workers: 2, QueueDepth: 8})
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	c := client.New(hs.URL)
	ctx := context.Background()

	inst := genInstance(t, 40, 80, 3, 7)
	if _, err := c.Solve(ctx, inst, api.SolveOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Solve(ctx, inst, api.SolveOptions{Engine: api.EngineFlat}); err != nil {
		t.Fatal(err)
	}

	// A traced solve of a fresh instance must return a report, bypass the
	// cache in both directions, and leave a trace id for correlation.
	traced := genInstance(t, 40, 80, 3, 8)
	res, err := c.Solve(ctx, traced, api.SolveOptions{Engine: api.EngineFlat, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Fatal("traced solve must not be served from the cache")
	}
	rep := res.Report
	if rep == nil {
		t.Fatal("traced solve returned no telemetry report")
	}
	if rep.TraceID == "" || rep.Engine != "flat" {
		t.Fatalf("report identity wrong: trace_id=%q engine=%q", rep.TraceID, rep.Engine)
	}
	if len(rep.Iterations) == 0 || rep.TotalSeconds <= 0 {
		t.Fatalf("report has no timing detail: %+v", rep)
	}
	var phaseSum float64
	for _, s := range rep.PhaseSeconds {
		phaseSum += s
	}
	if phaseSum <= 0 {
		t.Fatalf("report phase_seconds all zero: %+v", rep.PhaseSeconds)
	}
	// The traced solve must not have populated the cache either.
	again, err := c.Solve(ctx, traced, api.SolveOptions{Engine: api.EngineFlat})
	if err != nil {
		t.Fatal(err)
	}
	if again.Cached {
		t.Fatal("traced solve leaked its result into the cache")
	}
	if again.Report != nil {
		t.Fatal("untraced solve carried a telemetry report")
	}

	text := scrapeExposition(t, hs.URL)
	help, typed := parseExposition(t, text)
	for fam, wantType := range documentedMetricFamilies {
		if !help[fam] {
			t.Errorf("family %s missing HELP header", fam)
		}
		if got := typed[fam]; got != wantType {
			t.Errorf("family %s: TYPE %q, want %q", fam, got, wantType)
		}
	}

	// Telemetry series: both engines ran, so per-phase histograms must
	// exist for each under the right labels, and the queue-wait histogram
	// must have observed every job.
	for _, series := range []string{
		`coverd_solve_phase_seconds_count{engine="sim",phase="vertex"}`,
		`coverd_solve_phase_seconds_count{engine="sim",phase="edge"}`,
		`coverd_solve_phase_seconds_count{engine="flat",phase="vertex"}`,
		`coverd_solve_phase_seconds_count{engine="flat",phase="gather"}`,
		`coverd_solve_phase_seconds_bucket{engine="flat",phase="init",`,
		`coverd_cluster_boundary_bytes_total{direction="sent"} 0`,
		`coverd_cluster_boundary_bytes_total{direction="received"} 0`,
		`coverd_cluster_frames_total{direction="sent"} 0`,
		`coverd_job_queue_wait_seconds_count`,
	} {
		if !strings.Contains(text, series) {
			t.Errorf("metrics output missing %q", series)
		}
	}
	if strings.Contains(text, "coverd_job_queue_wait_seconds_count 0\n") {
		t.Error("queue-wait histogram observed nothing despite completed jobs")
	}
}

func scrapeExposition(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape: status %d, err %v", resp.StatusCode, err)
	}
	return string(body)
}

// parseExposition validates every line of a Prometheus text scrape and
// returns which families carried HELP headers and their declared types.
func parseExposition(t *testing.T, text string) (help map[string]bool, typed map[string]string) {
	t.Helper()
	help = map[string]bool{}
	typed = map[string]string{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatal("blank line in exposition")
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			help[strings.Fields(rest)[0]] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			f := strings.Fields(rest)
			if len(f) != 2 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			typed[f[0]] = f[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment %q", line)
		}
		f := strings.Fields(line)
		if len(f) != 2 {
			t.Fatalf("sample line %q is not `name value`", line)
		}
		metric := f[0]
		if i := strings.IndexByte(metric, '{'); i >= 0 {
			if !strings.HasSuffix(metric, "}") {
				t.Fatalf("unbalanced label braces in %q", line)
			}
			metric = metric[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(metric,
			"_bucket"), "_sum"), "_count")
		if _, ok := typed[metric]; !ok {
			if _, ok := typed[base]; !ok {
				t.Fatalf("sample %q has no TYPE header", line)
			}
		}
	}
	return help, typed
}
