package server

import (
	"context"
	"errors"
)

// ErrQueueFull is returned by tryEnqueue when the bounded job queue is at
// capacity; handlers translate it into HTTP 429 so clients back off.
var ErrQueueFull = errors.New("coverd: job queue full")

// jobQueue is a bounded FIFO of pending jobs. The bound is the server's
// backpressure mechanism: when producers outrun the worker pool the queue
// fills and non-blocking submits fail fast instead of piling up goroutines
// and memory.
type jobQueue struct {
	ch chan *job
}

func newJobQueue(capacity int) *jobQueue {
	return &jobQueue{ch: make(chan *job, capacity)}
}

// tryEnqueue adds the job if capacity allows, otherwise ErrQueueFull.
func (q *jobQueue) tryEnqueue(j *job) error {
	select {
	case q.ch <- j:
		return nil
	default:
		return ErrQueueFull
	}
}

// enqueue blocks until the job is accepted or ctx is done. Batch handlers
// use it so a large batch streams through a small queue instead of failing.
func (q *jobQueue) enqueue(ctx context.Context, j *job) error {
	select {
	case q.ch <- j:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// depth returns the number of queued jobs.
func (q *jobQueue) depth() int { return len(q.ch) }

// capacity returns the queue bound.
func (q *jobQueue) capacity() int { return cap(q.ch) }
