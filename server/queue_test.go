package server

import (
	"context"
	"errors"
	"testing"
	"time"

	"distcover/server/api"
)

func TestQueueBackpressure(t *testing.T) {
	q := newJobQueue(2)
	j := func() *job { return newJob(nil, nil, api.SolveOptions{}, "h", "k") }
	if err := q.tryEnqueue(j()); err != nil {
		t.Fatal(err)
	}
	if err := q.tryEnqueue(j()); err != nil {
		t.Fatal(err)
	}
	if err := q.tryEnqueue(j()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	if q.depth() != 2 || q.capacity() != 2 {
		t.Fatalf("depth=%d capacity=%d, want 2/2", q.depth(), q.capacity())
	}
}

func TestQueueBlockingEnqueue(t *testing.T) {
	q := newJobQueue(1)
	if err := q.tryEnqueue(newJob(nil, nil, api.SolveOptions{}, "h", "k")); err != nil {
		t.Fatal(err)
	}
	// Blocking enqueue proceeds once a consumer drains the queue. The
	// consumer needs no delay: whether it drains before or after the
	// producer parks, the enqueue must complete.
	drained := make(chan struct{})
	go func() {
		<-q.ch
		close(drained)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := q.enqueue(ctx, newJob(nil, nil, api.SolveOptions{}, "h", "k")); err != nil {
		t.Fatalf("blocking enqueue: %v", err)
	}
	<-drained
	// With no consumer, a canceled context unblocks the producer.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel2()
	if err := q.enqueue(ctx2, newJob(nil, nil, api.SolveOptions{}, "h", "k")); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}

func TestJobRegistryEviction(t *testing.T) {
	r := newJobRegistry(2)
	j1, j2, j3 := newJob(nil, nil, api.SolveOptions{}, "", ""), newJob(nil, nil, api.SolveOptions{}, "", ""), newJob(nil, nil, api.SolveOptions{}, "", "")
	j1.complete(nil, nil)
	j2.complete(nil, nil)
	r.add(j1)
	r.add(j2)
	r.add(j3)
	if _, ok := r.get(j1.id); ok {
		t.Fatal("oldest finished job should have been evicted")
	}
	if _, ok := r.get(j3.id); !ok {
		t.Fatal("newest job missing")
	}
	r.remove(j3.id)
	if _, ok := r.get(j3.id); ok {
		t.Fatal("removed job still present")
	}
}

// TestJobRegistrySkipsUnfinished ensures a queued/running async job is
// never evicted while a client can still poll for it.
func TestJobRegistrySkipsUnfinished(t *testing.T) {
	r := newJobRegistry(2)
	running := newJob(nil, nil, api.SolveOptions{}, "", "")
	running.setRunning()
	r.add(running)
	for i := 0; i < 5; i++ {
		done := newJob(nil, nil, api.SolveOptions{}, "", "")
		done.complete(nil, nil)
		r.add(done)
	}
	if _, ok := r.get(running.id); !ok {
		t.Fatal("running job was evicted while still pollable")
	}
	// Once finished it becomes evictable again.
	running.complete(nil, nil)
	for i := 0; i < 3; i++ {
		done := newJob(nil, nil, api.SolveOptions{}, "", "")
		done.complete(nil, nil)
		r.add(done)
	}
	if _, ok := r.get(running.id); ok {
		t.Fatal("finished job should eventually be evicted")
	}
}
