package server

// Coordinator ring. With Config.RingSelf/RingMembers set, this server is
// one of several symmetric coverd coordinators sharing a consistent-hash
// ring (distcover/internal/ring): solves are owned by the coordinator the
// instance's content hash maps to, sessions by the coordinator their id
// maps to. Session ids are rejection-sampled at creation so ownership is
// a pure function of the id — any member (and any ring-aware client) can
// route a session request without a directory service.
//
// Misrouted requests are repaired with a single-hop loop guard:
// body-bearing requests (solve, session update) are proxied server-side
// to their owner with the X-Coverd-Hop header set; bodyless ones (session
// get/delete) get a 307 redirect carrying ?hop=1. A hop-marked request is
// always served locally, so a request crosses at most one extra hop no
// matter how stale the sender's view is.
//
// Failover: when a forward fails at the transport level (or an active
// /healthz probe does), the target is marked down for ringDownTTL and
// ownership of its keys falls to the next live members — exactly the
// assignment a ring without the dead member would produce (ring.OwnerLive,
// property-tested). A coordinator that becomes the live owner of a dead
// member's session adopts it from that member's WAL subdirectory under
// the shared -wal-dir root (read-only; durable.Recover), so a SIGKILL
// costs one WAL replay, not lost sessions. The dead member's directory is
// never written: if it restarts it recovers its own state and, after the
// down TTL lapses, regains its arcs.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"distcover"
	"distcover/internal/durable"
	"distcover/internal/ring"
	"distcover/server/api"
)

// ringHopHeader marks a server-side forwarded request; its value is the
// forwarding member's address. Requests carrying it (or the ?hop=1 query
// a redirect appends) are served locally without further routing.
const ringHopHeader = "X-Coverd-Hop"

// ringDownTTL is how long a member stays marked unreachable before
// forwards are attempted against it again. A member that restarts within
// the TTL regains its arcs at the next attempt after expiry.
const ringDownTTL = 5 * time.Second

// ringState is the mutable ring-side state of one coordinator.
type ringState struct {
	ring  *ring.Ring
	self  string
	httpc *http.Client // forwarding client (generous timeout: solves can be slow)

	mu   sync.Mutex
	down map[string]time.Time // member → when it was marked unreachable

	adoptMu sync.Mutex
	adopted map[string]bool // dead members whose WAL dir was already adopted
}

func newRingState(self string, members []string) (*ringState, error) {
	r, err := ring.New(members, 0)
	if err != nil {
		return nil, fmt.Errorf("coverd: %w", err)
	}
	if self == "" {
		return nil, fmt.Errorf("coverd: ring membership set but no self address (-ring-self)")
	}
	if !r.Contains(self) {
		return nil, fmt.Errorf("coverd: ring self %q is not in the membership list %v", self, r.Members())
	}
	return &ringState{
		ring:    r,
		self:    self,
		httpc:   &http.Client{Timeout: 2 * time.Minute},
		down:    make(map[string]time.Time),
		adopted: make(map[string]bool),
	}, nil
}

// isDown reports whether member is inside its unreachable TTL. It is the
// down predicate handed to ring.OwnerLive.
func (st *ringState) isDown(member string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	t, ok := st.down[member]
	return ok && time.Since(t) < ringDownTTL
}

func (st *ringState) markDown(member string, m *Metrics) {
	st.mu.Lock()
	st.down[member] = time.Now()
	st.mu.Unlock()
	if m != nil {
		m.recordRingDown()
	}
}

// liveOwner is the member that should serve key right now: the static
// owner unless it is marked down, in which case ownership falls to the
// next live member exactly as if the owner had left the ring.
func (st *ringState) liveOwner(key string) string {
	owner := st.ring.Owner(key)
	if !st.isDown(owner) {
		return owner
	}
	return st.ring.OwnerLive(key, st.isDown)
}

// memberReachable actively verifies a member: already-marked-down members
// are unreachable without a probe, otherwise one short /healthz round trip
// decides (and a failure marks the member down). Used on the session-miss
// path, where a request may be the first signal that an owner died.
func (st *ringState) memberReachable(member string, m *Metrics) bool {
	if st.isDown(member) {
		return false
	}
	c := &http.Client{Timeout: time.Second}
	resp, err := c.Get(ringMemberURL(member) + "/healthz")
	if err != nil {
		st.markDown(member, m)
		return false
	}
	resp.Body.Close()
	return true
}

// ringMemberURL turns a member address (host:port, as -ring lists them)
// into a base URL. Members already carrying a scheme pass through, so a
// membership list of full URLs works too — as long as every process and
// client uses the exact same strings (they are the ring's hash keys).
func ringMemberURL(member string) string {
	if strings.Contains(member, "://") {
		return member
	}
	return "http://" + member
}

// ringHopped reports whether the request already crossed a member hop
// (server-side forward header or redirect query marker).
func ringHopped(r *http.Request) bool {
	return r.Header.Get(ringHopHeader) != "" || r.URL.Query().Get("hop") != ""
}

// ringMemberDir maps a member address onto its per-member subdirectory of
// the shared WAL root (bytes outside [A-Za-z0-9._-] become '_', so
// "127.0.0.1:8080" → "127.0.0.1_8080").
func ringMemberDir(member string) string {
	var b strings.Builder
	for _, c := range member {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '-', c == '_':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// walDir is this server's effective WAL directory: standalone servers use
// Config.WALDir as-is; ring members write under a per-member subdirectory
// of it, so a takeover coordinator can read a dead member's log without
// ever touching its own.
func (s *Server) walDir() string {
	if s.ringst == nil {
		return s.cfg.WALDir
	}
	return filepath.Join(s.cfg.WALDir, ringMemberDir(s.ringst.self))
}

// ringSessionID draws session ids until one owned by this coordinator
// comes up (expected tries ≈ member count). Ownership of a session is
// thereby a pure function of its id: every member and every ring-aware
// client can locate it from the membership list alone.
func (s *Server) ringSessionID() string {
	if s.ringst == nil {
		return newJobID()
	}
	for {
		id := newJobID()
		if s.ringst.ring.Owner(id) == s.ringst.self {
			return id
		}
	}
}

// solveKey computes the ring routing key of a solve request: the
// instance's canonical content hash (same identity the result cache
// uses). "" means malformed — let the local handler produce the error.
func solveKey(req api.SolveRequest) string {
	switch {
	case len(req.Instance) > 0 && req.ILP != nil:
		return ""
	case len(req.Instance) > 0:
		inst, err := distcover.ReadInstance(bytes.NewReader(req.Instance))
		if err != nil {
			return ""
		}
		return inst.Hash()
	case req.ILP != nil:
		return api.KeyILP(req.ILP)
	}
	return ""
}

// ringSolveRoute forwards a misrouted solve to its owner. Returns true if
// the response was written (forwarded). Async solves are always served
// locally — their job ids are polled on the accepting member — and so are
// hop-marked requests (loop guard) and requests this member owns. A
// forward that fails at the transport level marks the owner down and
// retries the recomputed live owner once; if that fails too the solve
// runs locally, which any member can do.
func (s *Server) ringSolveRoute(w http.ResponseWriter, r *http.Request, req *api.SolveRequest) bool {
	st := s.ringst
	if st == nil || req.Async || ringHopped(r) {
		return false
	}
	key := solveKey(*req)
	if key == "" {
		return false
	}
	for attempt := 0; attempt < 2; attempt++ {
		owner := st.liveOwner(key)
		if owner == st.self || owner == "" {
			return false
		}
		if s.ringProxy(w, owner, r.URL.Path, req) {
			return true
		}
	}
	return false
}

// ringSessionMiss handles a session id that is not in the local registry.
// It returns true when a response was written (forward or redirect);
// false means the caller should retry the local lookup — a takeover may
// just have installed the session — and report 404 on continued absence.
// payload nil selects redirect (bodyless GET/DELETE), non-nil selects a
// server-side proxy of the JSON payload.
func (s *Server) ringSessionMiss(w http.ResponseWriter, r *http.Request, id string, payload any) bool {
	st := s.ringst
	owner := st.ring.Owner(id)
	if owner == st.self {
		return false // ours, and genuinely absent
	}
	if !ringHopped(r) && !st.isDown(owner) {
		if s.ringSend(w, r, owner, payload) {
			return true
		}
		// Transport failure: the proxy marked the owner down; fall through
		// to the failover logic. (Redirects never fail here — the client
		// discovers an unreachable owner itself and retries with ?hop=1,
		// which lands in the hop-marked branch below.)
	}
	// The owner did not serve it. If the owner is dead, its keys fall to
	// the next live members: adopt its durable sessions if that is us, or
	// point the request at the live owner if it is someone else (never for
	// hop-marked requests — one extra hop is the contract).
	if !st.memberReachable(owner, s.metrics) {
		live := st.ring.OwnerLive(id, st.isDown)
		if live == st.self {
			s.ringAdopt(owner)
			return false
		}
		if live != "" && !ringHopped(r) && s.ringSend(w, r, live, payload) {
			return true
		}
	}
	return false
}

// ringSend points a session request at target: 307 redirect for bodyless
// requests (payload nil), server-side proxy otherwise. Returns true if a
// response was written.
func (s *Server) ringSend(w http.ResponseWriter, r *http.Request, target string, payload any) bool {
	if payload == nil {
		s.metrics.recordRingRedirect()
		http.Redirect(w, r, ringMemberURL(target)+r.URL.Path+"?hop=1", http.StatusTemporaryRedirect)
		return true
	}
	return s.ringProxy(w, target, r.URL.Path, payload)
}

// ringProxy re-issues a JSON POST server-side and relays the owner's
// response verbatim (status, content type, body). Returns false on
// transport failure, after marking the target down; HTTP-level errors
// from the target are a served response, not a failure.
func (s *Server) ringProxy(w http.ResponseWriter, target, path string, payload any) bool {
	st := s.ringst
	body, err := json.Marshal(payload)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "coverd: ring forward: %v", err)
		return true
	}
	req, err := http.NewRequest(http.MethodPost, ringMemberURL(target)+path, bytes.NewReader(body))
	if err != nil {
		writeError(w, http.StatusInternalServerError, "coverd: ring forward: %v", err)
		return true
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ringHopHeader, st.self)
	resp, err := st.httpc.Do(req)
	if err != nil {
		st.markDown(target, s.metrics)
		s.warn("coverd: ring forward failed", "target", target, "path", path, "err", err)
		return false
	}
	defer resp.Body.Close()
	s.metrics.recordRingForward()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true
}

// ringAdopt rehydrates, from a dead member's WAL subdirectory, every
// durable session whose ownership has fallen to this coordinator.
// Idempotent per dead member. The read is strictly read-only
// (durable.Recover): the dead member's directory stays exactly as its
// crash left it, so a restart recovers its own state cleanly. Adopted
// sessions are made durable here by forcing a snapshot into this member's
// own WAL — they have no create records in it, so the snapshot is what
// carries them across a crash of this process. (A crash between install
// and snapshot simply re-runs the takeover: the dead member's directory
// still holds everything.)
func (s *Server) ringAdopt(dead string) {
	st := s.ringst
	if s.wal == nil {
		return // no durability configured: nothing to adopt from
	}
	st.adoptMu.Lock()
	defer st.adoptMu.Unlock()
	if st.adopted[dead] {
		return
	}
	dir := filepath.Join(s.cfg.WALDir, ringMemberDir(dead))
	rec, err := durable.Recover(dir)
	if err != nil {
		s.warn("coverd: ring takeover: cannot read dead member's wal",
			"member", dead, "dir", dir, "err", err)
		return
	}
	mine := func(id string) bool {
		if _, ok := s.sessions.get(id); ok {
			return false // already held (e.g. adopted through another path)
		}
		return st.ring.OwnerLive(id, st.isDown) == st.self
	}
	entries := s.foldRecovery(rec, mine)
	for _, e := range entries {
		s.installRecovered(e)
		s.metrics.recordRingTakeover()
	}
	st.adopted[dead] = true
	if len(entries) == 0 {
		return
	}
	if s.cfg.Logger != nil {
		s.cfg.Logger.Info("coverd: ring takeover: adopted sessions from dead member",
			"member", dead, "dir", dir, "sessions", len(entries))
	}
	if err := s.snapshotNow(true); err != nil {
		s.warn("coverd: ring takeover: snapshot failed", "err", err)
	}
}

// handleRing serves GET /v1/ring: the membership a ring-aware client
// needs to rebuild the identical ring and route requests directly.
func (s *Server) handleRing(w http.ResponseWriter, r *http.Request) {
	if s.ringst == nil {
		writeJSON(w, http.StatusOK, api.RingInfo{Enabled: false})
		return
	}
	writeJSON(w, http.StatusOK, api.RingInfo{
		Enabled: true,
		Self:    s.ringst.self,
		Members: s.ringst.ring.Members(),
		VNodes:  s.ringst.ring.VNodes(),
	})
}
