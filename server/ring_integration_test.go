package server_test

// In-process coordinator-ring integration tests: several server.Server
// instances joined by Config.RingSelf/RingMembers over real loopback
// listeners. The cross-process SIGKILL variant lives in
// cmd/coverd/ring_e2e_test.go; here the servers share one test binary, so
// routing, hop accounting and WAL takeover can be asserted against the
// exact metrics counters.

import (
	"context"
	"net"
	"net/http"
	"reflect"
	"sync"
	"testing"

	"distcover/client"
	"distcover/internal/ring"
	"distcover/server"
	"distcover/server/api"
)

// ringMember is one in-process coordinator with its HTTP front.
type ringMember struct {
	addr string // host:port — the ring identity
	srv  *server.Server
	hs   *http.Server
	ln   net.Listener
	once sync.Once
}

func (m *ringMember) url() string { return "http://" + m.addr }

// kill makes the member unreachable and releases it, front first so peers
// see connection refused, not a draining server. Idempotent, so tests can
// kill a member the Cleanup will also reach.
func (m *ringMember) kill() {
	m.once.Do(func() {
		m.hs.Close()
		m.srv.Close()
	})
}

// startRingMembers binds n loopback listeners (the addresses become the
// membership list), then opens one server per address with the full list.
func startRingMembers(t *testing.T, n int, walRoot string) []*ringMember {
	t.Helper()
	members := make([]*ringMember, n)
	addrs := make([]string, n)
	for i := range members {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		members[i] = &ringMember{addr: ln.Addr().String(), ln: ln}
		addrs[i] = members[i].addr
	}
	for _, m := range members {
		srv, err := server.Open(server.Config{
			Workers:     2,
			QueueDepth:  32,
			RingSelf:    m.addr,
			RingMembers: addrs,
			WALDir:      walRoot,
		})
		if err != nil {
			t.Fatal(err)
		}
		m.srv = srv
		m.hs = &http.Server{Handler: srv.Handler()}
		go m.hs.Serve(m.ln)
		t.Cleanup(m.kill)
	}
	return members
}

// byAddr returns the member with the given ring address.
func byAddr(t *testing.T, members []*ringMember, addr string) *ringMember {
	t.Helper()
	for _, m := range members {
		if m.addr == addr {
			return m
		}
	}
	t.Fatalf("no member %q", addr)
	return nil
}

// otherThan returns some member that is not addr.
func otherThan(t *testing.T, members []*ringMember, addr string) *ringMember {
	t.Helper()
	for _, m := range members {
		if m.addr != addr {
			return m
		}
	}
	t.Fatalf("all members are %q", addr)
	return nil
}

// TestRingRoutingIntegration drives a 3-coordinator ring through every
// routing path: ring discovery, a misrouted solve (server-side forward,
// exactly one hop), a misrouted session get (307 redirect) and update
// (forward), self-owned session ids, and a ring-aware client that routes
// directly and so adds no hops at all.
func TestRingRoutingIntegration(t *testing.T) {
	members := startRingMembers(t, 3, "")
	ctx := context.Background()

	// Every member serves the same membership over /v1/ring, and the
	// client-side rebuild accepts it.
	var addrs []string
	for _, m := range members {
		addrs = append(addrs, m.addr)
	}
	want, err := ring.New(addrs, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range members {
		c := client.New(m.url())
		on, err := c.DiscoverRing(ctx)
		if err != nil || !on {
			t.Fatalf("DiscoverRing via %s: on=%v err=%v", m.addr, on, err)
		}
		if got := c.RingMembers(); !reflect.DeepEqual(got, want.Members()) {
			t.Fatalf("membership via %s: got %v want %v", m.addr, got, want.Members())
		}
	}

	// Misrouted solve: send to a non-owner, expect the owner's result
	// through exactly one server-side hop.
	inst := genInstance(t, 60, 120, 3, 42)
	owner := byAddr(t, members, want.Owner(inst.Hash()))
	sender := otherThan(t, members, owner.addr)
	sc := client.New(sender.url()) // plain client: no ring discovery
	res, err := sc.Solve(ctx, inst, api.SolveOptions{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := client.New(owner.url()).Solve(ctx, inst, api.SolveOptions{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Weight != direct.Weight || !reflect.DeepEqual(res.Cover, direct.Cover) {
		t.Fatalf("forwarded solve diverged: weight %d vs %d", res.Weight, direct.Weight)
	}
	if !direct.Cached {
		t.Fatal("direct re-solve missed the owner's cache: forward did not land on the owner")
	}
	sm, om := sender.srv.Metrics().Snapshot(), owner.srv.Metrics().Snapshot()
	if sm.RingForwards != 1 {
		t.Fatalf("sender forwards = %d, want 1", sm.RingForwards)
	}
	if om.RingHops != 1 {
		t.Fatalf("owner hops = %d, want exactly 1", om.RingHops)
	}

	// Sessions: the creating member mints an id it owns, so ownership is a
	// pure function of the id.
	creator := members[0]
	cc := client.New(creator.url())
	sess, err := cc.CreateSession(ctx, genInstance(t, 40, 80, 3, 7), api.SolveOptions{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if got := want.Owner(sess.ID); got != creator.addr {
		t.Fatalf("session id %s owned by %s, want its creator %s", sess.ID, got, creator.addr)
	}

	// Misrouted bodyless get ⇒ 307 redirect, which the default client
	// follows to the owner.
	wrong := otherThan(t, members, creator.addr)
	wc := client.New(wrong.url())
	info, err := wc.Session(ctx, sess.ID)
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != sess.ID {
		t.Fatalf("redirected get returned %q", info.ID)
	}
	if n := wrong.srv.Metrics().Snapshot().RingRedirects; n != 1 {
		t.Fatalf("redirects = %d, want 1", n)
	}

	// Misrouted update ⇒ server-side forward; it must actually apply.
	upd, err := wc.UpdateSession(ctx, sess.ID, api.SessionDelta{Edges: [][]int{{1, 2, 3}}})
	if err != nil {
		t.Fatal(err)
	}
	if upd.Session == nil || upd.Session.Updates != 1 {
		t.Fatalf("forwarded update did not apply: %+v", upd)
	}

	// A ring-aware client routes per key: its calls add no forwards and no
	// hops anywhere.
	rc := client.New(wrong.url())
	if on, err := rc.DiscoverRing(ctx); err != nil || !on {
		t.Fatalf("DiscoverRing: on=%v err=%v", on, err)
	}
	var beforeF, beforeH int64
	for _, m := range members {
		s := m.srv.Metrics().Snapshot()
		beforeF += s.RingForwards + s.RingRedirects
		beforeH += s.RingHops
	}
	if _, err := rc.UpdateSession(ctx, sess.ID, api.SessionDelta{Edges: [][]int{{4, 5, 6}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Session(ctx, sess.ID); err != nil {
		t.Fatal(err)
	}
	var afterF, afterH int64
	for _, m := range members {
		s := m.srv.Metrics().Snapshot()
		afterF += s.RingForwards + s.RingRedirects
		afterH += s.RingHops
	}
	if afterF != beforeF || afterH != beforeH {
		t.Fatalf("ring-aware client caused routing traffic: forwards/redirects %d→%d, hops %d→%d",
			beforeF, afterF, beforeH, afterH)
	}

	// The aggregated listing sees the session exactly once across members.
	all, err := rc.Sessions(ctx)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, s := range all {
		if s.ID == sess.ID {
			seen++
		}
	}
	if seen != 1 {
		t.Fatalf("session listed %d times across the ring, want exactly 1", seen)
	}

	// Ring-aware delete, then the id is gone everywhere.
	if err := rc.CloseSession(ctx, sess.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := cc.Session(ctx, sess.ID); err == nil {
		t.Fatal("session still served by its owner after delete")
	}
}

// TestRingTakeover kills a session's owner and asserts the surviving
// coordinator adopts the session from the dead member's WAL subdirectory:
// same state, Recovered flag set, takeover metrics ticked, and further
// updates served by the survivor.
func TestRingTakeover(t *testing.T) {
	walRoot := t.TempDir()
	members := startRingMembers(t, 2, walRoot)
	ctx := context.Background()

	owner := members[0]
	oc := client.New(owner.url())
	sess, err := oc.CreateSession(ctx, genInstance(t, 40, 80, 3, 9), api.SolveOptions{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	upd, err := oc.UpdateSession(ctx, sess.ID, api.SessionDelta{Edges: [][]int{{2, 4, 6}}})
	if err != nil {
		t.Fatal(err)
	}
	want := upd.Session

	owner.kill()

	// A ring-aware client first dials the dead owner, then falls back to
	// the survivor with the hop marker — the request that triggers the
	// survivor's WAL takeover.
	survivor := otherThan(t, members, owner.addr)
	vc := client.New(survivor.url())
	if on, err := vc.DiscoverRing(ctx); err != nil || !on {
		t.Fatalf("DiscoverRing: on=%v err=%v", on, err)
	}
	got, err := vc.Session(ctx, sess.ID)
	if err != nil {
		t.Fatalf("survivor did not take over the session: %v", err)
	}
	if !got.Recovered {
		t.Fatal("adopted session not marked Recovered")
	}
	if got.Updates != want.Updates || got.Edges != want.Edges ||
		got.Result.Weight != want.Result.Weight ||
		!reflect.DeepEqual(got.Result.Cover, want.Result.Cover) {
		t.Fatalf("adopted session diverged from the owner's last state:\n got %+v\nwant %+v", got, want)
	}
	s := survivor.srv.Metrics().Snapshot()
	if s.RingTakeovers < 1 {
		t.Fatalf("takeovers = %d, want ≥ 1", s.RingTakeovers)
	}
	if s.RingDowns < 1 {
		t.Fatalf("member-down marks = %d, want ≥ 1", s.RingDowns)
	}

	// The survivor now serves the session for real.
	upd2, err := vc.UpdateSession(ctx, sess.ID, api.SessionDelta{Edges: [][]int{{1, 3, 5}}})
	if err != nil {
		t.Fatal(err)
	}
	if upd2.Session.Updates != want.Updates+1 {
		t.Fatalf("post-takeover update count %d, want %d", upd2.Session.Updates, want.Updates+1)
	}
}
