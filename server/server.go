// Package server implements coverd, a long-running HTTP/JSON service that
// exposes the library's distributed covering solvers to many concurrent
// clients. Built entirely on the standard library, it consists of:
//
//   - a bounded job queue (backpressure: full queue ⇒ HTTP 429),
//   - a fixed-size worker pool (one solver goroutine per worker),
//   - an LRU instance-result cache keyed by the canonical content hash of
//     the instance (Instance.Hash) plus an option fingerprint,
//   - an async job registry for fire-and-poll workloads,
//   - Prometheus-format metrics (solve counts, latency histogram, cache
//     hit/miss, queue depth).
//
// Endpoints:
//
//	POST   /v1/solve                solve one instance (sync, or async with "async":true)
//	POST   /v1/solve/batch          solve many instances through the same pool
//	GET    /v1/jobs/{id}            status/result of an async job
//	POST   /v1/sessions             open an incremental session (initial solve)
//	POST   /v1/sessions/{id}/update apply a delta batch (residual re-solve)
//	GET    /v1/sessions/{id}        current session state
//	DELETE /v1/sessions/{id}        close and forget a session
//	GET    /healthz                 liveness + queue/cache/session stats
//	GET    /metrics                 Prometheus text format
//
// See distcover/server/api for the wire types and distcover/client for the
// Go client.
package server

import (
	"bytes"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"time"

	"distcover"
	"distcover/internal/durable"
	"distcover/server/api"
)

// Config parameterizes a Server. The zero value gets sensible defaults
// from New.
type Config struct {
	// Workers is the solver pool size (default: GOMAXPROCS).
	Workers int
	// QueueDepth bounds the job queue; submits beyond it fail with 429
	// (default 256).
	QueueDepth int
	// CacheSize is the LRU instance-result cache capacity in entries;
	// 0 uses the default 1024, negative disables caching.
	CacheSize int
	// MaxBatch caps the number of requests in one batch (default 4096).
	MaxBatch int
	// MaxBodyBytes caps request body size (default 32 MiB).
	MaxBodyBytes int64
	// JobCapacity bounds how many async jobs are retained for polling
	// (default 4096).
	JobCapacity int
	// SessionCapacity bounds how many incremental sessions are kept live
	// (default 128); a secondary cap on registry bookkeeping.
	SessionCapacity int
	// SessionMemoryBudget bounds the total estimated heap footprint of all
	// live sessions in bytes (default 256 MiB; negative disables the byte
	// bound). Sessions are weighed by Session.MemoryBytes — instance CSR
	// arrays plus carried solver state — and the least recently used are
	// evicted and closed when the total exceeds the budget, including when
	// an update grows a session past it. This is the primary session bound:
	// it holds under mixed instance sizes where a plain count cannot.
	SessionMemoryBudget int64
	// ClusterPeers are the coverd peer-protocol addresses this server may
	// coordinate solves across (coverd -peers). Empty disables the
	// "cluster" engine: requests asking for it are rejected.
	ClusterPeers []string
	// ClusterPartitions is the default partition count for cluster solves
	// when the request leaves SolveOptions.Partitions at 0 (0 = one
	// partition per peer).
	ClusterPartitions int
	// Logger receives the structured solve logs (today the cluster
	// coordinator's per-solve and per-peer lines, each carrying the
	// solve's trace id). nil is silent.
	Logger *slog.Logger
	// WALDir, when non-empty, makes sessions durable: creates, delta
	// batches and deletes are logged to a write-ahead log in this directory
	// before they are acknowledged, and Open rehydrates the surviving
	// sessions on restart (coverd -wal-dir). Empty disables durability.
	// With a ring configured this is the SHARED root: each member logs
	// under its own subdirectory (see walDir), which is what lets a
	// takeover coordinator replay a dead member's sessions.
	WALDir string
	// RingSelf and RingMembers put this server on a consistent-hash
	// coordinator ring (coverd -ring-self/-ring): RingMembers is the full
	// static membership list (every member gets the same one), RingSelf is
	// this server's advertised address and must appear in the list. Both
	// empty disables the ring. See server/ring.go for routing, forwarding
	// and takeover semantics.
	RingSelf    string
	RingMembers []string
	// SnapshotInterval is how often the WAL is compacted into a snapshot
	// file (default 1m when WALDir is set; coverd -snapshot-interval).
	SnapshotInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	switch {
	case c.CacheSize == 0:
		c.CacheSize = 1024
	case c.CacheSize < 0:
		c.CacheSize = 0
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 4096
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.JobCapacity <= 0 {
		c.JobCapacity = 4096
	}
	if c.SessionCapacity <= 0 {
		c.SessionCapacity = 128
	}
	switch {
	case c.SessionMemoryBudget == 0:
		c.SessionMemoryBudget = 256 << 20
	case c.SessionMemoryBudget < 0:
		c.SessionMemoryBudget = 0
	}
	if c.SnapshotInterval <= 0 {
		c.SnapshotInterval = time.Minute
	}
	return c
}

// Server is the coverd service. Create with New, expose via Handler, and
// stop with Close.
type Server struct {
	cfg      Config
	queue    *jobQueue
	pool     *workerPool
	cache    *resultCache
	metrics  *Metrics
	jobs     *jobRegistry
	sessions *sessionRegistry
	mux      *http.ServeMux

	// Durability (nil wal ⇒ disabled). commitMu makes apply+log atomic with
	// respect to snapshots: mutating handlers hold the read side across
	// (apply to session, append WAL record), the snapshot writer holds the
	// write side across (capture sessions, write snapshot file). Without it
	// a snapshot could capture an applied update whose record lands after
	// the snapshot's sequence number and gets replayed twice on recovery.
	wal      *durable.Store
	commitMu sync.RWMutex
	snapStop chan struct{}
	snapDone chan struct{}

	// Coordinator ring (nil ⇒ standalone). See server/ring.go.
	ringst *ringState
}

// New builds a Server and starts its worker pool. It panics if the
// configured WAL directory cannot be opened or replayed; use Open to
// handle durability errors.
func New(cfg Config) *Server {
	s, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Open builds a Server, recovers durable sessions from cfg.WALDir if set,
// and starts the worker pool and snapshot loop.
func Open(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		queue:    newJobQueue(cfg.QueueDepth),
		cache:    newResultCache(cfg.CacheSize),
		metrics:  NewMetrics(),
		jobs:     newJobRegistry(cfg.JobCapacity),
		sessions: newSessionRegistry(cfg.SessionCapacity, cfg.SessionMemoryBudget),
	}
	s.pool = newWorkerPool(cfg.Workers, s.queue, s.cache, s.metrics)
	s.pool.cluster = clusterSettings{peers: cfg.ClusterPeers, partitions: cfg.ClusterPartitions}
	s.pool.logger = cfg.Logger
	if cfg.RingSelf != "" || len(cfg.RingMembers) > 0 {
		st, err := newRingState(cfg.RingSelf, cfg.RingMembers)
		if err != nil {
			return nil, err
		}
		s.ringst = st
	}
	if cfg.WALDir != "" {
		if err := s.openWAL(); err != nil {
			return nil, err
		}
	}
	s.pool.start()
	s.mux = http.NewServeMux()
	s.routes()
	return s, nil
}

// Handler returns the HTTP handler serving the coverd API. On a ring
// member it counts hop-marked arrivals (requests another member forwarded
// or redirected here) before dispatch.
func (s *Server) Handler() http.Handler {
	if s.ringst == nil {
		return s.mux
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if ringHopped(r) {
			s.metrics.recordRingHop()
		}
		s.mux.ServeHTTP(w, r)
	})
}

// Metrics exposes the server's metrics registry (tests, embedding).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Close stops the worker pool; queued jobs fail, in-flight solves finish.
// With a WAL configured it then writes a final snapshot and closes the log,
// so a clean shutdown restarts from the snapshot alone.
func (s *Server) Close() {
	if s.wal != nil {
		close(s.snapStop)
		<-s.snapDone
	}
	s.pool.close()
	if s.wal != nil {
		if err := s.snapshotNow(true); err != nil && s.cfg.Logger != nil {
			s.cfg.Logger.Warn("coverd: final snapshot failed", "err", err)
		}
		if err := s.wal.Close(); err != nil && s.cfg.Logger != nil {
			s.cfg.Logger.Warn("coverd: wal close failed", "err", err)
		}
	}
}

// Workers returns the configured worker pool size.
func (s *Server) Workers() int { return s.cfg.Workers }

// buildJob validates a SolveRequest and turns it into a queueable job.
func (s *Server) buildJob(req api.SolveRequest) (*job, error) {
	// Reject an unservable cluster request up front: it shares the
	// simulator's cache identity, so deferring the check to the worker
	// would let a warm cache serve what configuration says must fail. A
	// peerless server can still serve the engine when a partition count is
	// available (request or -partitions) — that is the in-process
	// shared-memory mode.
	if req.Options.Engine == api.EngineCluster && len(s.cfg.ClusterPeers) == 0 &&
		req.Options.Partitions <= 0 && s.cfg.ClusterPartitions <= 0 {
		return nil, fmt.Errorf("coverd: engine %q requires a server started with -peers, or a partition count for the local shared-memory mode", api.EngineCluster)
	}
	switch {
	case len(req.Instance) > 0 && req.ILP != nil:
		return nil, fmt.Errorf("request sets both instance and ilp")
	case len(req.Instance) > 0:
		inst, err := distcover.ReadInstance(bytes.NewReader(req.Instance))
		if err != nil {
			return nil, err
		}
		hash := inst.Hash()
		return newJob(inst, nil, req.Options, hash, hash+"|"+req.Options.Fingerprint()), nil
	case req.ILP != nil:
		ilp := distcover.NewILP(req.ILP.Weights)
		for i, c := range req.ILP.Constraints {
			if err := ilp.AddConstraint(c.Vars, c.Coefs, c.Bound); err != nil {
				return nil, fmt.Errorf("constraint %d: %w", i, err)
			}
		}
		if err := ilp.Validate(); err != nil {
			return nil, err
		}
		hash := api.KeyILP(req.ILP)
		return newJob(nil, ilp, req.Options, hash, hash+"|"+req.Options.Fingerprint()), nil
	default:
		return nil, fmt.Errorf("request must set instance or ilp")
	}
}

// lookupCache serves a request from the cache if allowed, recording
// hit/miss metrics. Returns nil on miss.
func (s *Server) lookupCache(j *job) *api.SolveResult {
	if j.skipCacheRead() {
		return nil
	}
	res := s.cache.get(j.cacheKey)
	s.metrics.recordCache(res != nil)
	return res
}
