package server_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"distcover"
	"distcover/client"
	"distcover/internal/hypergraph"
	"distcover/server"
	"distcover/server/api"
)

// newTestServer starts an in-process coverd on a loopback listener.
func newTestServer(t *testing.T, cfg server.Config) (*server.Server, *client.Client) {
	t.Helper()
	srv := server.New(cfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return srv, client.New(hs.URL)
}

// genInstance produces a deterministic random instance through the public
// codec (the generators are internal).
func genInstance(t *testing.T, n, m, f int, seed int64) *distcover.Instance {
	t.Helper()
	g, err := hypergraph.UniformRandom(n, m, f, hypergraph.GenConfig{
		Seed: seed, MaxWeight: 100, Dist: hypergraph.WeightUniformRange,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	inst, err := distcover.ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// TestEndToEndBatch is the acceptance test: an in-process server with a
// worker pool much smaller than the batch solves ≥100 generated instances
// submitted through the Go client; every cover must be feasible with its
// certificate intact, repeated submission must hit the cache, and flooding
// past the queue bound must produce 429 backpressure.
func TestEndToEndBatch(t *testing.T) {
	const (
		batchSize = 120
		workers   = 4
		queue     = 16
		eps       = 0.5
	)
	srv, c := newTestServer(t, server.Config{Workers: workers, QueueDepth: queue})

	instances := make([]*distcover.Instance, batchSize)
	reqs := make([]api.SolveRequest, batchSize)
	for i := range reqs {
		instances[i] = genInstance(t, 60, 120, 3, int64(1000+i))
		raw, err := client.EncodeInstance(instances[i])
		if err != nil {
			t.Fatal(err)
		}
		reqs[i] = api.SolveRequest{Instance: raw, Options: api.SolveOptions{Epsilon: eps}}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	items, err := c.SolveBatch(ctx, reqs)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	for i, item := range items {
		if item.Error != "" {
			t.Fatalf("item %d failed: %s", i, item.Error)
		}
		res := item.Result
		if !instances[i].IsCover(res.Cover) {
			t.Fatalf("item %d: returned cover is infeasible", i)
		}
		if got := instances[i].CoverWeight(res.Cover); got != res.Weight {
			t.Fatalf("item %d: weight %d does not match cover (%d)", i, res.Weight, got)
		}
		// Certificate: Weight ≤ RatioBound × DualLowerBound and
		// DualLowerBound ≤ OPT, so Weight ≤ RatioBound × OPT; the bound
		// itself must respect the f+ε guarantee.
		f := instances[i].Stats().Rank
		if res.RatioBound > float64(f)+eps+1e-9 {
			t.Fatalf("item %d: ratio bound %.4f exceeds f+ε = %.1f", i, res.RatioBound, float64(f)+eps)
		}
		if float64(res.Weight) > res.RatioBound*res.DualLowerBound*(1+1e-9) {
			t.Fatalf("item %d: certificate broken: weight %d > %.4f × %.4f",
				i, res.Weight, res.RatioBound, res.DualLowerBound)
		}
		if res.InstanceHash == "" {
			t.Fatalf("item %d: missing instance hash", i)
		}
	}

	// Second submission of the same batch must be served from the cache.
	items2, err := c.SolveBatch(ctx, reqs)
	if err != nil {
		t.Fatalf("repeat batch: %v", err)
	}
	cachedCount := 0
	for i, item := range items2 {
		if item.Error != "" {
			t.Fatalf("repeat item %d failed: %s", i, item.Error)
		}
		if item.Result.Cached {
			cachedCount++
		}
		if item.Result.Weight != items[i].Result.Weight {
			t.Fatalf("repeat item %d: weight changed %d → %d (non-deterministic?)",
				i, items[i].Result.Weight, item.Result.Weight)
		}
	}
	if cachedCount == 0 {
		t.Fatal("no cache hits on repeated submission")
	}
	if snap := srv.Metrics().Snapshot(); snap.CacheHits == 0 {
		t.Fatalf("metrics report no cache hits: %+v", snap)
	}

	// Backpressure: with one worker and a 2-slot queue, at most three sync
	// requests can be in the system at once (1 running + 2 queued, each
	// held by a waiting handler); 20 concurrent clients must see 429s.
	// The congest engine keeps each solve slow enough that the requests
	// genuinely overlap.
	busySrv, busyClient := newTestServer(t, server.Config{Workers: 1, QueueDepth: 2})
	// Sized so one congest solve takes tens of milliseconds even after
	// engine speedups — the flood must genuinely overlap 1 running + 2
	// queued requests before the 20 clients stop arriving.
	heavy := genInstance(t, 4000, 16000, 3, 99)
	heavyRaw, err := client.EncodeInstance(heavy)
	if err != nil {
		t.Fatal(err)
	}
	var (
		mu       sync.Mutex
		rejected int
		floodErr error
	)
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Epsilon varies so the flood cannot be served from cache.
			opts := api.SolveOptions{
				Epsilon: 0.3 + float64(i)/100,
				Engine:  api.EngineCongest,
				NoCache: true,
			}
			_, err := busyClient.SolveRequest(ctx, api.SolveRequest{Instance: heavyRaw, Options: opts})
			mu.Lock()
			defer mu.Unlock()
			if errors.Is(err, client.ErrBusy) {
				rejected++
			} else if err != nil && floodErr == nil {
				floodErr = fmt.Errorf("flood request %d: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	if floodErr != nil {
		t.Fatal(floodErr)
	}
	if rejected == 0 {
		t.Fatal("queue flood produced no 429 backpressure")
	}
	if snap := busySrv.Metrics().Snapshot(); snap.Backpressured == 0 {
		t.Fatalf("metrics report no backpressure: %+v", snap)
	}
}

func TestSolveSyncAndEngines(t *testing.T) {
	_, c := newTestServer(t, server.Config{Workers: 2, QueueDepth: 8})
	inst := genInstance(t, 30, 60, 3, 5)
	ctx := context.Background()

	simRes, err := c.Solve(ctx, inst, api.SolveOptions{Epsilon: 0.5})
	if err != nil {
		t.Fatalf("sim solve: %v", err)
	}
	if !inst.IsCover(simRes.Cover) {
		t.Fatal("sim cover infeasible")
	}
	if simRes.Congest != nil {
		t.Fatal("sim result should not carry congest stats")
	}

	raw, err := client.EncodeInstance(inst)
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []string{api.EngineCongest, api.EngineCongestParallel, api.EngineCongestSharded} {
		shards := 0
		if engine == api.EngineCongestSharded {
			shards = 3 // exercise an explicit per-request shard count
		}
		res, err := c.SolveRequest(ctx, api.SolveRequest{
			Instance: raw,
			Options:  api.SolveOptions{Epsilon: 0.5, Engine: engine, Shards: shards},
		})
		if err != nil {
			t.Fatalf("%s solve: %v", engine, err)
		}
		if res.Congest == nil || res.Congest.Rounds == 0 {
			t.Fatalf("%s: missing congest stats", engine)
		}
		if res.Weight != simRes.Weight {
			t.Fatalf("%s: weight %d differs from sim %d (engines must agree)",
				engine, res.Weight, simRes.Weight)
		}
	}

	// The flat engine must agree with sim exactly — and because the two
	// share a cache identity, the flat solve of an instance the simulator
	// already answered is a cache hit.
	flatRes, err := c.SolveRequest(ctx, api.SolveRequest{
		Instance: raw,
		Options:  api.SolveOptions{Epsilon: 0.5, Engine: api.EngineFlat, Parallelism: 3},
	})
	if err != nil {
		t.Fatalf("flat solve: %v", err)
	}
	if flatRes.Weight != simRes.Weight || flatRes.DualLowerBound != simRes.DualLowerBound {
		t.Fatalf("flat result (%d, %g) differs from sim (%d, %g)",
			flatRes.Weight, flatRes.DualLowerBound, simRes.Weight, simRes.DualLowerBound)
	}
	if !flatRes.Cached {
		t.Fatal("flat solve should share the sim cache identity")
	}

	if _, err := c.SolveRequest(ctx, api.SolveRequest{
		Instance: raw, Options: api.SolveOptions{Engine: "warp-drive"},
	}); err == nil {
		t.Fatal("unknown engine should fail")
	}
}

func TestSolveILP(t *testing.T) {
	_, c := newTestServer(t, server.Config{Workers: 2, QueueDepth: 8})
	// minimize 3x0 + 2x1 + 4x2  s.t.  x0+x1 ≥ 1, x1+x2 ≥ 2.
	req := api.SolveRequest{
		ILP: &api.ILPSpec{
			Weights: []int64{3, 2, 4},
			Constraints: []api.ILPConstraint{
				{Vars: []int{0, 1}, Coefs: []int64{1, 1}, Bound: 1},
				{Vars: []int{1, 2}, Coefs: []int64{1, 1}, Bound: 2},
			},
		},
		Options: api.SolveOptions{Epsilon: 0.5},
	}
	res, err := c.SolveRequest(context.Background(), req)
	if err != nil {
		t.Fatalf("ilp solve: %v", err)
	}
	if len(res.X) != 3 {
		t.Fatalf("expected 3 variables, got %v", res.X)
	}
	if res.X[0]+res.X[1] < 1 || res.X[1]+res.X[2] < 2 {
		t.Fatalf("infeasible ILP solution %v", res.X)
	}
	want := int64(3*res.X[0] + 2*res.X[1] + 4*res.X[2])
	if res.Value != want {
		t.Fatalf("value %d does not match solution %v (want %d)", res.Value, res.X, want)
	}
	// Repeat: identical ILP must hit the cache.
	res2, err := c.SolveRequest(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Cached {
		t.Fatal("repeated ILP did not hit the cache")
	}
}

func TestAsyncJobLifecycle(t *testing.T) {
	_, c := newTestServer(t, server.Config{Workers: 2, QueueDepth: 16})
	inst := genInstance(t, 40, 80, 2, 11)
	raw, err := client.EncodeInstance(inst)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	id, err := c.SolveAsync(ctx, api.SolveRequest{Instance: raw, Options: api.SolveOptions{Epsilon: 1}})
	if err != nil {
		t.Fatalf("async submit: %v", err)
	}
	res, err := c.Wait(ctx, id, 5*time.Millisecond)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if !inst.IsCover(res.Cover) {
		t.Fatal("async cover infeasible")
	}

	if _, err := c.Job(ctx, "no-such-job"); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("unknown job: want ErrNotFound, got %v", err)
	}

	// Async submit of a cached instance completes immediately.
	id2, err := c.SolveAsync(ctx, api.SolveRequest{Instance: raw, Options: api.SolveOptions{Epsilon: 1}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Job(ctx, id2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != api.JobDone || !st.Result.Cached {
		t.Fatalf("cached async job should be done immediately, got %+v", st)
	}
}

func TestBadRequests(t *testing.T) {
	_, c := newTestServer(t, server.Config{Workers: 1, QueueDepth: 4, MaxBodyBytes: 1 << 20})
	ctx := context.Background()

	// Neither instance nor ILP.
	if _, err := c.SolveRequest(ctx, api.SolveRequest{}); err == nil {
		t.Fatal("empty request should fail")
	}
	// Malformed instance JSON.
	if _, err := c.SolveRequest(ctx, api.SolveRequest{Instance: []byte(`{"weights":[0],"edges":[[0]]}`)}); err == nil {
		t.Fatal("zero weight should fail validation")
	}
	// Empty batch.
	if _, err := c.SolveBatch(ctx, nil); err == nil {
		t.Fatal("empty batch should fail")
	}
}

// TestServerConcurrentSolves exercises the worker pool with many parallel
// sync requests over distinct instances (run with -race).
func TestServerConcurrentSolves(t *testing.T) {
	_, c := newTestServer(t, server.Config{Workers: 4, QueueDepth: 64})
	ctx := context.Background()
	const clients = 8
	const perClient = 6
	var wg sync.WaitGroup
	errCh := make(chan error, clients*perClient)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				inst := genInstance(t, 30, 60, 2, int64(g*100+k))
				res, err := c.Solve(ctx, inst, api.SolveOptions{Epsilon: 1})
				if err != nil {
					if errors.Is(err, client.ErrBusy) {
						continue // backpressure is legal under load
					}
					errCh <- fmt.Errorf("client %d req %d: %w", g, k, err)
					return
				}
				if !inst.IsCover(res.Cover) {
					errCh <- fmt.Errorf("client %d req %d: infeasible cover", g, k)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

func TestHealthAndMetricsEndpoints(t *testing.T) {
	srv := server.New(server.Config{Workers: 3, QueueDepth: 7})
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	c := client.New(hs.URL)

	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Workers != 3 || h.QueueCapacity != 7 {
		t.Fatalf("unexpected health: %+v", h)
	}

	inst := genInstance(t, 20, 40, 2, 3)
	if _, err := c.Solve(context.Background(), inst, api.SolveOptions{}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, series := range []string{
		`coverd_solves_total{outcome="ok"} 1`,
		"coverd_solve_seconds_bucket",
		"coverd_solve_seconds_count 1",
		"coverd_cache_misses_total 1",
		"coverd_queue_depth",
		"coverd_workers 3",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("metrics output missing %q\n%s", series, text)
		}
	}
}
