package server

import (
	"container/list"
	"sync"

	"distcover"
	"distcover/server/api"
)

// sessionEntry is one live incremental session held by the server.
type sessionEntry struct {
	id   string
	sess *distcover.Session
	opts api.SolveOptions
}

// info snapshots the externally visible session state. One State() call
// keeps the snapshot consistent under concurrent updates: the reported
// cover always covers the instance named by InstanceHash.
func (e *sessionEntry) info() *api.SessionInfo {
	st := e.sess.State()
	sol := st.Solution
	res := &api.SolveResult{
		Cover:          sol.Cover,
		Weight:         sol.Weight,
		DualLowerBound: sol.DualLowerBound,
		RatioBound:     sol.RatioBound,
		Epsilon:        sol.Epsilon,
		Iterations:     sol.Iterations,
		Rounds:         sol.Rounds,
		InstanceHash:   st.Hash,
	}
	if cs := st.Congest; cs != nil {
		res.Congest = &api.CongestInfo{
			Rounds:         cs.Rounds,
			Messages:       cs.Messages,
			TotalBits:      cs.TotalBits,
			MaxMessageBits: cs.MaxMessageBits,
			WireBytes:      cs.WireBytes,
		}
	}
	return &api.SessionInfo{
		ID:             e.id,
		InstanceHash:   st.Hash,
		Vertices:       st.Stats.Vertices,
		Edges:          st.Stats.Edges,
		Rank:           st.Stats.Rank,
		Updates:        st.Updates,
		CertifiedBound: st.CertifiedBound,
		Result:         res,
	}
}

// sessionRegistry tracks live sessions by id, bounded like the job
// registry: beyond capacity the least recently used session is evicted and
// closed, so a server under sustained session churn cannot grow without
// limit (sessions pin whole instances in memory, unlike finished jobs).
type sessionRegistry struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used; values are *sessionEntry
	byID     map[string]*list.Element
}

func newSessionRegistry(capacity int) *sessionRegistry {
	return &sessionRegistry{
		capacity: capacity,
		order:    list.New(),
		byID:     make(map[string]*list.Element),
	}
}

// add registers a session under a fresh id, evicting LRU entries beyond
// capacity. Evicted sessions are closed only after the registry lock is
// released: Close waits for an in-flight Update, and holding r.mu through
// a residual solve would stall every endpoint that touches the registry.
func (r *sessionRegistry) add(sess *distcover.Session, opts api.SolveOptions) *sessionEntry {
	e := &sessionEntry{id: newJobID(), sess: sess, opts: opts}
	var evicted []*sessionEntry
	r.mu.Lock()
	r.byID[e.id] = r.order.PushFront(e)
	for r.order.Len() > r.capacity {
		last := r.order.Back()
		r.order.Remove(last)
		old := last.Value.(*sessionEntry)
		delete(r.byID, old.id)
		evicted = append(evicted, old)
	}
	r.mu.Unlock()
	for _, old := range evicted {
		old.sess.Close()
	}
	return e
}

// get returns the session and marks it most recently used.
func (r *sessionRegistry) get(id string) (*sessionEntry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.byID[id]
	if !ok {
		return nil, false
	}
	r.order.MoveToFront(el)
	return el.Value.(*sessionEntry), true
}

// remove closes and forgets a session (Close outside the lock, as in add).
func (r *sessionRegistry) remove(id string) bool {
	r.mu.Lock()
	el, ok := r.byID[id]
	if ok {
		r.order.Remove(el)
		delete(r.byID, id)
	}
	r.mu.Unlock()
	if !ok {
		return false
	}
	el.Value.(*sessionEntry).sess.Close()
	return true
}

// len returns the number of live sessions.
func (r *sessionRegistry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.order.Len()
}
