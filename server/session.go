package server

import (
	"container/list"
	"sync"

	"distcover"
	"distcover/server/api"
)

// sessionEntry is one live incremental session held by the server.
type sessionEntry struct {
	id   string
	sess *distcover.Session
	opts api.SolveOptions
	// bytes is the session's estimated heap footprint (instance CSR arrays
	// plus carried solver state), as of the last add/refresh. Guarded by
	// the registry mutex.
	bytes int64
	// walMu serializes apply+log for this session when a WAL is configured,
	// so the log's record order matches the order updates were applied.
	// Lock order: walMu before Server.commitMu (read side).
	walMu sync.Mutex
	// recovered marks sessions rehydrated from the WAL after a restart.
	// Set before the entry is published, immutable afterwards.
	recovered bool
	// baseHash is the content hash of the instance the session was created
	// with; cluster sessions use it to invalidate peer instance caches on
	// delete. Empty for recovered sessions (best-effort cleanup only).
	baseHash string
}

// info snapshots the externally visible session state. One State() call
// keeps the snapshot consistent under concurrent updates: the reported
// cover always covers the instance named by InstanceHash.
func (e *sessionEntry) info() *api.SessionInfo {
	st := e.sess.State()
	sol := st.Solution
	res := &api.SolveResult{
		Cover:          sol.Cover,
		Weight:         sol.Weight,
		DualLowerBound: sol.DualLowerBound,
		RatioBound:     sol.RatioBound,
		Epsilon:        sol.Epsilon,
		Iterations:     sol.Iterations,
		Rounds:         sol.Rounds,
		InstanceHash:   st.Hash,
	}
	if cs := st.Congest; cs != nil {
		res.Congest = &api.CongestInfo{
			Rounds:         cs.Rounds,
			Messages:       cs.Messages,
			TotalBits:      cs.TotalBits,
			MaxMessageBits: cs.MaxMessageBits,
			WireBytes:      cs.WireBytes,
		}
	}
	return &api.SessionInfo{
		ID:             e.id,
		InstanceHash:   st.Hash,
		Vertices:       st.Stats.Vertices,
		Edges:          st.Stats.Edges,
		Rank:           st.Stats.Rank,
		Updates:        st.Updates,
		CertifiedBound: st.CertifiedBound,
		Result:         res,
		Recovered:      e.recovered,
	}
}

// sessionRegistry tracks live sessions by id, bounded by a memory budget:
// every session is weighed by its estimated byte footprint
// (Session.MemoryBytes — the instance's CSR array lengths plus carried
// solver state), and whenever the total exceeds the budget the least
// recently used sessions are evicted and closed. Sessions pin whole
// instances in memory, so weighing them — rather than counting them — is
// what actually bounds the server under mixed instance sizes: one
// million-edge session costs as much as thousands of small ones. A count
// cap is kept as a secondary bound on registry bookkeeping. Deltas grow
// sessions after admission, so updates re-weigh their session and can
// trigger eviction too.
type sessionRegistry struct {
	mu       sync.Mutex
	capacity int        // max live sessions (secondary bound)
	budget   int64      // max total estimated bytes; the primary bound
	bytes    int64      // current total estimate
	order    *list.List // front = most recently used; values are *sessionEntry
	byID     map[string]*list.Element
	// onEvict, if set, is called (outside r.mu, after Close) for every
	// session evicted by the budget or count bound — not for explicit
	// removes. The server uses it to log eviction deletes to the WAL; those
	// call sites already hold the commit lock that keeps the log and the
	// snapshot consistent.
	onEvict func(*sessionEntry)
}

func newSessionRegistry(capacity int, budget int64) *sessionRegistry {
	return &sessionRegistry{
		capacity: capacity,
		budget:   budget,
		order:    list.New(),
		byID:     make(map[string]*list.Element),
	}
}

// add registers a session under a fresh id, evicting LRU entries beyond
// the byte budget or the count cap. Evicted sessions are closed only after
// the registry lock is released: Close waits for an in-flight Update, and
// holding r.mu through a residual solve would stall every endpoint that
// touches the registry.
func (r *sessionRegistry) add(sess *distcover.Session, opts api.SolveOptions) *sessionEntry {
	return r.addEntry(&sessionEntry{id: newJobID(), sess: sess, opts: opts})
}

// addEntry registers a pre-built entry — the durable paths build their own
// (fixed id from the WAL, recovered flag, base hash) — and runs eviction.
func (r *sessionRegistry) addEntry(e *sessionEntry) *sessionEntry {
	e.bytes = e.sess.MemoryBytes()
	r.mu.Lock()
	r.byID[e.id] = r.order.PushFront(e)
	r.bytes += e.bytes
	evicted := r.evictLocked()
	r.mu.Unlock()
	r.closeEvicted(evicted)
	return e
}

func (r *sessionRegistry) closeEvicted(evicted []*sessionEntry) {
	for _, old := range evicted {
		old.sess.Close()
		if r.onEvict != nil {
			r.onEvict(old)
		}
	}
}

// refresh re-weighs a session after an update grew its instance, evicting
// LRU entries if the growth pushed the total past the budget. The newest
// estimate is taken before the registry lock so the session's own mutex is
// never held inside it.
func (r *sessionRegistry) refresh(e *sessionEntry) {
	bytes := e.sess.MemoryBytes()
	r.mu.Lock()
	if _, ok := r.byID[e.id]; !ok {
		r.mu.Unlock()
		return // already evicted or removed
	}
	r.bytes += bytes - e.bytes
	e.bytes = bytes
	evicted := r.evictLocked()
	r.mu.Unlock()
	r.closeEvicted(evicted)
}

// evictLocked pops LRU entries until both bounds hold, always keeping at
// least one session (a single session larger than the whole budget is the
// caller's workload; refusing it would make the endpoint useless).
func (r *sessionRegistry) evictLocked() []*sessionEntry {
	var evicted []*sessionEntry
	for r.order.Len() > 1 &&
		(r.order.Len() > r.capacity || (r.budget > 0 && r.bytes > r.budget)) {
		last := r.order.Back()
		r.order.Remove(last)
		old := last.Value.(*sessionEntry)
		delete(r.byID, old.id)
		r.bytes -= old.bytes
		evicted = append(evicted, old)
	}
	return evicted
}

// get returns the session and marks it most recently used.
func (r *sessionRegistry) get(id string) (*sessionEntry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.byID[id]
	if !ok {
		return nil, false
	}
	r.order.MoveToFront(el)
	return el.Value.(*sessionEntry), true
}

// remove closes and forgets a session (Close outside the lock, as in add).
func (r *sessionRegistry) remove(id string) bool {
	r.mu.Lock()
	el, ok := r.byID[id]
	if ok {
		r.order.Remove(el)
		delete(r.byID, id)
		r.bytes -= el.Value.(*sessionEntry).bytes
	}
	r.mu.Unlock()
	if !ok {
		return false
	}
	el.Value.(*sessionEntry).sess.Close()
	return true
}

// list returns all live entries, most recently used first.
func (r *sessionRegistry) list() []*sessionEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*sessionEntry, 0, r.order.Len())
	for el := r.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*sessionEntry))
	}
	return out
}

// len returns the number of live sessions.
func (r *sessionRegistry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.order.Len()
}

// totalBytes returns the current total estimated session footprint.
func (r *sessionRegistry) totalBytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bytes
}
