package server_test

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"distcover"
	"distcover/client"
	"distcover/server"
	"distcover/server/api"
)

// TestSessionEndToEnd drives the full session lifecycle over HTTP: create,
// stream delta batches, poll state, delete — checking the certificate and
// the incremental hash on every step.
func TestSessionEndToEnd(t *testing.T) {
	srv, c := newTestServer(t, server.Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	inst := genInstance(t, 200, 500, 3, 7)
	info, err := c.CreateSession(ctx, inst, api.SolveOptions{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if info.ID == "" || info.Result == nil || info.Vertices != 200 || info.Edges != 500 {
		t.Fatalf("bad session info: %+v", info)
	}
	if info.InstanceHash != inst.Hash() {
		t.Fatal("session hash != instance hash")
	}
	if info.Result.RatioBound > info.CertifiedBound*(1+1e-9) {
		t.Fatalf("ratio %g exceeds certificate %g", info.Result.RatioBound, info.CertifiedBound)
	}

	rng := rand.New(rand.NewSource(3))
	cur := inst
	n := 200
	for batch := 0; batch < 5; batch++ {
		var d api.SessionDelta
		for i := 0; i < rng.Intn(3); i++ {
			d.Weights = append(d.Weights, 1+rng.Int63n(50))
		}
		total := n + len(d.Weights)
		for i := 0; i < 20; i++ {
			d.Edges = append(d.Edges, []int{rng.Intn(total), rng.Intn(total), rng.Intn(total)})
		}
		n = total
		upd, err := c.UpdateSession(ctx, info.ID, d)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if upd.CoveredOnArrival+upd.ResidualEdges != upd.NewEdges {
			t.Fatalf("batch %d: edge accounting off: %+v", batch, upd)
		}
		cur, err = cur.Extend(distcover.Delta{Weights: d.Weights, Edges: d.Edges})
		if err != nil {
			t.Fatal(err)
		}
		if upd.Session.InstanceHash != cur.Hash() {
			t.Fatalf("batch %d: incremental hash drifted", batch)
		}
		if !cur.IsCover(upd.Session.Result.Cover) {
			t.Fatalf("batch %d: invalid cover", batch)
		}
		if upd.Session.Result.RatioBound > upd.Session.CertifiedBound*(1+1e-9) {
			t.Fatalf("batch %d: certificate broken: %+v", batch, upd.Session)
		}
	}

	got, err := c.Session(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Updates != 5 {
		t.Fatalf("updates = %d, want 5", got.Updates)
	}
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Sessions != 1 {
		t.Fatalf("health sessions = %d", h.Sessions)
	}
	snap := srv.Metrics().Snapshot()
	if snap.SessionsCreated != 1 || snap.SessionUpdates != 5 {
		t.Fatalf("metrics: %+v", snap)
	}

	if err := c.CloseSession(ctx, info.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Session(ctx, info.ID); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("deleted session still reachable: %v", err)
	}
	if err := c.CloseSession(ctx, info.ID); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

// TestSessionErrorsAndEviction covers rejection paths and the bounded
// registry: bad instances, bad deltas, unknown ids, unknown engines, and
// LRU eviction (evicted sessions are closed, updates to them fail cleanly).
func TestSessionErrorsAndEviction(t *testing.T) {
	_, c := newTestServer(t, server.Config{Workers: 2, SessionCapacity: 2})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	inst := genInstance(t, 20, 40, 2, 1)

	if _, err := c.CreateSession(ctx, inst, api.SolveOptions{Engine: "warp-drive"}); err == nil ||
		!strings.Contains(err.Error(), "unknown engine") {
		t.Fatalf("unknown engine: %v", err)
	}
	if _, err := c.UpdateSession(ctx, "nope", api.SessionDelta{}); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("unknown session update: %v", err)
	}

	a, err := c.CreateSession(ctx, inst, api.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.UpdateSession(ctx, a.ID, api.SessionDelta{Edges: [][]int{{0, 999}}}); err == nil {
		t.Fatal("out-of-range delta accepted")
	}
	if _, err := c.UpdateSession(ctx, a.ID, api.SessionDelta{Weights: []int64{-1}}); err == nil {
		t.Fatal("negative weight accepted")
	}
	// A failed update must leave the session usable.
	if _, err := c.UpdateSession(ctx, a.ID, api.SessionDelta{Edges: [][]int{{0, 1}}}); err != nil {
		t.Fatalf("session poisoned by rejected delta: %v", err)
	}

	// Capacity 2: creating two more evicts the least recently used (a).
	if _, err = c.CreateSession(ctx, inst, api.SolveOptions{Epsilon: 0.25}); err != nil {
		t.Fatal(err)
	}
	if _, err = c.CreateSession(ctx, inst, api.SolveOptions{Epsilon: 0.75}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Session(ctx, a.ID); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("evicted session still reachable: %v", err)
	}
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Sessions != 2 {
		t.Fatalf("sessions = %d, want 2", h.Sessions)
	}
}

// TestSessionByteBudgetEviction exercises the size-weighted registry bound:
// sessions are weighed by their estimated byte footprint, so a budget that
// fits only one of these instances evicts the LRU session on the next
// create — and a delta batch that grows a session re-weighs it against the
// budget too.
func TestSessionByteBudgetEviction(t *testing.T) {
	// Each 500-vertex/1000-edge f=3 session weighs tens of KiB; a 64 KiB
	// budget holds one of them but not two.
	_, c := newTestServer(t, server.Config{Workers: 2, SessionMemoryBudget: 64 << 10})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	inst := genInstance(t, 500, 1000, 3, 11)

	a, err := c.CreateSession(ctx, inst, api.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.SessionBytes <= 0 {
		t.Fatalf("health reports no session bytes: %+v", h)
	}
	b, err := c.CreateSession(ctx, inst, api.SolveOptions{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Session(ctx, a.ID); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("byte budget did not evict the LRU session: %v", err)
	}
	if _, err := c.Session(ctx, b.ID); err != nil {
		t.Fatalf("newest session must survive even over budget: %v", err)
	}

	// Growing the surviving session re-weighs it; the registry keeps the
	// last session alive (a lone session over budget is the workload).
	var d api.SessionDelta
	for i := 0; i < 200; i++ {
		d.Edges = append(d.Edges, []int{i % 500, (i + 3) % 500, (i + 9) % 500})
	}
	if _, err := c.UpdateSession(ctx, b.ID, d); err != nil {
		t.Fatal(err)
	}
	h2, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Sessions != 1 {
		t.Fatalf("sessions = %d, want 1", h2.Sessions)
	}
	if _, err := c.Session(ctx, b.ID); err != nil {
		t.Fatalf("grown session evicted despite being the only one: %v", err)
	}
}

// TestSessionConcurrentClients hammers one session from many goroutines
// while others read it; run under -race in CI.
func TestSessionConcurrentClients(t *testing.T) {
	_, c := newTestServer(t, server.Config{Workers: 4})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	inst := genInstance(t, 50, 100, 3, 5)
	info, err := c.CreateSession(ctx, inst, api.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				d := api.SessionDelta{Edges: [][]int{{(w*8 + i) % 50, (w*8 + i + 7) % 50}}}
				if _, err := c.UpdateSession(ctx, info.ID, d); err != nil && !errors.Is(err, client.ErrBusy) {
					errs <- err
					return
				}
				if _, err := c.Session(ctx, info.ID); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	final, err := c.Session(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Result.RatioBound > final.CertifiedBound*(1+1e-9) {
		t.Fatalf("certificate broken after concurrent updates: %+v", final)
	}
}
