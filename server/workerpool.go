package server

import (
	"fmt"
	"log/slog"
	"time"

	"distcover"
	"distcover/server/api"
)

// workerPool runs a fixed number of solver goroutines over the job queue.
// One goroutine per worker: solves are CPU-bound, so the pool size bounds
// solver parallelism while the queue bound limits memory under overload.
type workerPool struct {
	queue   *jobQueue
	cache   *resultCache
	metrics *Metrics
	cluster clusterSettings
	logger  *slog.Logger // cluster coordinator logs; nil = silent
	size    int
	stop    chan struct{}
	idle    chan struct{} // one token per worker, returned on exit
}

// clusterSettings carries the server's peer-mode configuration to the
// option mapping: the peer addresses come from the daemon's flags, not
// from requests, so requests can only select the engine and the partition
// count.
type clusterSettings struct {
	peers      []string
	partitions int
}

// options maps the settings plus a request's partition choice onto the
// library options. Without -peers the cluster engine still works when a
// partition count is available (from the request or -partition): the
// partitions run in-process over the shared-memory exchanger instead of
// TCP peers.
func (c clusterSettings) options(o api.SolveOptions) ([]distcover.Option, error) {
	parts := o.Partitions
	if parts == 0 {
		parts = c.partitions
	}
	if len(c.peers) == 0 {
		if parts <= 0 {
			return nil, fmt.Errorf("coverd: engine %q requires a server started with -peers, or a partition count for the local shared-memory mode", api.EngineCluster)
		}
		return []distcover.Option{distcover.WithClusterPartitions(parts)}, nil
	}
	return []distcover.Option{
		distcover.WithClusterPeers(c.peers...),
		distcover.WithClusterPartitions(parts),
	}, nil
}

func newWorkerPool(size int, q *jobQueue, cache *resultCache, metrics *Metrics) *workerPool {
	return &workerPool{
		queue:   q,
		cache:   cache,
		metrics: metrics,
		size:    size,
		stop:    make(chan struct{}),
		idle:    make(chan struct{}, size),
	}
}

func (p *workerPool) start() {
	for i := 0; i < p.size; i++ {
		go p.worker()
	}
}

func (p *workerPool) worker() {
	defer func() { p.idle <- struct{}{} }()
	for {
		select {
		case <-p.stop:
			return
		case j := <-p.queue.ch:
			p.run(j)
		}
	}
}

// close stops the workers, waits for in-flight solves to finish, then
// fails any jobs still sitting in the queue so their waiters unblock.
func (p *workerPool) close() {
	close(p.stop)
	for i := 0; i < p.size; i++ {
		<-p.idle
	}
	for {
		select {
		case j := <-p.queue.ch:
			j.complete(nil, fmt.Errorf("coverd: server shutting down"))
		default:
			return
		}
	}
}

// run dispatches one job to its kind-specific execution.
func (p *workerPool) run(j *job) {
	if !j.enqueuedAt.IsZero() {
		p.metrics.recordQueueWait(time.Since(j.enqueuedAt))
	}
	switch j.kind {
	case jobSessionCreate:
		p.runSessionCreate(j)
	case jobSessionUpdate:
		p.runSessionUpdate(j)
	case jobSnapshot:
		j.setRunning()
		j.complete(nil, j.snapFn())
	default:
		p.runSolve(j)
	}
}

// runSessionCreate performs a session's initial solve.
func (p *workerPool) runSessionCreate(j *job) {
	j.setRunning()
	opts, err := sessionLibOptions(j.opts, p.cluster)
	if err != nil {
		j.complete(nil, err)
		return
	}
	// The tracer attached here persists in the session's stored config, so
	// later Update re-solves keep feeding the phase metrics too.
	opts = append(opts, distcover.WithTracer(p.metrics.SolveTracer(engineLabel(j.opts.Engine))))
	if p.logger != nil {
		opts = append(opts, distcover.WithLogger(p.logger))
	}
	start := time.Now()
	sess, err := distcover.NewSession(j.inst, opts...)
	elapsed := time.Since(start)
	p.metrics.recordSolve(elapsed.Seconds(), err)
	if err != nil {
		j.complete(nil, err)
		return
	}
	j.newSess = sess
	j.complete(&api.SolveResult{ElapsedMS: float64(elapsed.Microseconds()) / 1000}, nil)
}

// runSessionUpdate applies one delta batch; concurrent updates to the same
// session serialize inside Session.Update.
func (p *workerPool) runSessionUpdate(j *job) {
	j.setRunning()
	start := time.Now()
	st, err := j.sessEntry.sess.Update(j.delta)
	elapsed := time.Since(start)
	p.metrics.recordSolve(elapsed.Seconds(), err)
	if err != nil {
		j.complete(nil, err)
		return
	}
	j.upd = st
	j.complete(&api.SolveResult{ElapsedMS: float64(elapsed.Microseconds()) / 1000}, nil)
}

// runSolve executes one solve job: cache lookup, solve, cache fill, metrics.
func (p *workerPool) runSolve(j *job) {
	j.setRunning()
	// A second lookup here (the handler already checked at submit time)
	// catches duplicates that were queued behind the first computation of
	// the same instance.
	if !j.skipCacheRead() {
		if res := p.cache.get(j.cacheKey); res != nil {
			p.metrics.recordCache(true)
			j.complete(res, nil)
			return
		}
	}
	extra := []distcover.Option{
		distcover.WithTracer(p.metrics.SolveTracer(engineLabel(j.opts.Engine))),
	}
	if p.logger != nil {
		extra = append(extra, distcover.WithLogger(p.logger))
	}
	var rec *distcover.TraceRecorder
	if j.opts.Trace {
		// The job id doubles as the trace id, so a traced cluster solve is
		// findable in coordinator and peer logs by the id the client holds.
		rec = distcover.NewTraceRecorder(j.id)
		extra = append(extra, distcover.WithTelemetry(rec))
	}
	start := time.Now()
	res, err := solve(j.inst, j.ilp, j.opts, p.cluster, extra...)
	elapsed := time.Since(start)
	p.metrics.recordSolve(elapsed.Seconds(), err)
	if err != nil {
		j.complete(nil, err)
		return
	}
	res.ElapsedMS = float64(elapsed.Microseconds()) / 1000
	res.InstanceHash = j.hash
	if rec != nil {
		res.Report = rec.Report()
	}
	if !j.skipCacheWrite() {
		p.cache.put(j.cacheKey, res)
	}
	j.complete(res, nil)
}

// engineLabel is the metric label for a request's engine choice.
func engineLabel(engine string) string {
	if engine == "" {
		return api.EngineSim
	}
	return engine
}

// baseLibOptions maps the engine-independent api.SolveOptions onto the
// library's functional options.
func baseLibOptions(o api.SolveOptions) []distcover.Option {
	var opts []distcover.Option
	if o.FApprox {
		opts = append(opts, distcover.WithFApproximation())
	} else if o.Epsilon != 0 {
		opts = append(opts, distcover.WithEpsilon(o.Epsilon))
	}
	if o.SingleLevel {
		opts = append(opts, distcover.WithSingleLevelVariant())
	}
	if o.LocalAlpha {
		opts = append(opts, distcover.WithLocalAlpha())
	}
	if o.Alpha != 0 {
		opts = append(opts, distcover.WithFixedAlpha(o.Alpha))
	}
	if o.MaxIterations != 0 {
		opts = append(opts, distcover.WithMaxIterations(o.MaxIterations))
	}
	return opts
}

// sessionLibOptions additionally maps the engine choice for sessions, where
// an explicit engine option switches NewSession from the lockstep simulator
// to the message protocol on that engine (or partitions it across the
// server's cluster peers).
func sessionLibOptions(o api.SolveOptions, cluster clusterSettings) ([]distcover.Option, error) {
	opts := baseLibOptions(o)
	switch o.Engine {
	case "", api.EngineSim:
	case api.EngineFlat:
		opts = append(opts, distcover.WithFlatEngine(), distcover.WithSolverParallelism(o.Parallelism))
	case api.EngineCluster:
		copts, err := cluster.options(o)
		if err != nil {
			return nil, err
		}
		opts = append(opts, copts...)
	case api.EngineCongest:
		opts = append(opts, distcover.WithSequentialEngine())
	case api.EngineCongestParallel:
		opts = append(opts, distcover.WithParallelEngine())
	case api.EngineCongestSharded:
		opts = append(opts, distcover.WithShardedEngine(), distcover.WithShardCount(o.Shards))
	case api.EngineCongestTCP:
		opts = append(opts, distcover.WithTCPEngine())
	default:
		return nil, fmt.Errorf("coverd: unknown engine %q", o.Engine)
	}
	return opts, nil
}

// solve maps api.SolveOptions onto the library's functional options and
// dispatches to the right execution path. extra carries per-job telemetry
// options (tracer, recorder, logger) from the worker pool.
func solve(inst *distcover.Instance, ilp *distcover.ILP, o api.SolveOptions, cluster clusterSettings, extra ...distcover.Option) (*api.SolveResult, error) {
	opts := append(baseLibOptions(o), extra...)

	if ilp != nil {
		sol, err := distcover.SolveILP(ilp, opts...)
		if err != nil {
			return nil, err
		}
		ratio := 0.0
		if sol.DualLowerBound > 0 {
			ratio = float64(sol.Value) / sol.DualLowerBound
		}
		return &api.SolveResult{
			X:              sol.X,
			Value:          sol.Value,
			DualLowerBound: sol.DualLowerBound,
			RatioBound:     ratio,
			Iterations:     sol.Iterations,
			Rounds:         sol.Rounds,
		}, nil
	}

	switch o.Engine {
	case "", api.EngineSim, api.EngineFlat:
		if o.Engine == api.EngineFlat {
			opts = append(opts, distcover.WithFlatEngine(), distcover.WithSolverParallelism(o.Parallelism))
		}
		sol, err := distcover.Solve(inst, opts...)
		if err != nil {
			return nil, err
		}
		return coverResult(sol, nil), nil
	case api.EngineCluster:
		copts, err := cluster.options(o)
		if err != nil {
			return nil, err
		}
		sol, err := distcover.ClusterSolve(inst, cluster.peers, append(opts, copts...)...)
		if err != nil {
			return nil, err
		}
		return coverResult(sol, nil), nil
	case api.EngineCongest, api.EngineCongestParallel, api.EngineCongestSharded, api.EngineCongestTCP:
		switch o.Engine {
		case api.EngineCongestParallel:
			opts = append(opts, distcover.WithParallelEngine())
		case api.EngineCongestSharded:
			opts = append(opts, distcover.WithShardedEngine(), distcover.WithShardCount(o.Shards))
		case api.EngineCongestTCP:
			opts = append(opts, distcover.WithTCPEngine())
		}
		sol, stats, err := distcover.SolveCongest(inst, opts...)
		if err != nil {
			return nil, err
		}
		return coverResult(sol, stats), nil
	default:
		return nil, fmt.Errorf("coverd: unknown engine %q", o.Engine)
	}
}

func coverResult(sol *distcover.Solution, stats *distcover.CongestStats) *api.SolveResult {
	res := &api.SolveResult{
		Cover:          sol.Cover,
		Weight:         sol.Weight,
		DualLowerBound: sol.DualLowerBound,
		RatioBound:     sol.RatioBound,
		Epsilon:        sol.Epsilon,
		Iterations:     sol.Iterations,
		Rounds:         sol.Rounds,
	}
	if stats != nil {
		res.Congest = &api.CongestInfo{
			Rounds:         stats.Rounds,
			Messages:       stats.Messages,
			TotalBits:      stats.TotalBits,
			MaxMessageBits: stats.MaxMessageBits,
			WireBytes:      stats.WireBytes,
		}
	}
	return res
}
