package distcover

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"distcover/internal/congest"
	"distcover/internal/core"
	"distcover/internal/hypergraph"
)

// Delta is a batch of online updates to a session's instance: Weights
// appends new vertices, Edges appends new hyperedges (which may reference
// both existing vertices and the ones added in the same batch). The JSON
// shape mirrors the instance codec — {"weights":[...],"edges":[[...]]} —
// so producers of instance files can emit deltas with the same tooling.
type Delta struct {
	Weights []int64 `json:"weights,omitempty"`
	Edges   [][]int `json:"edges,omitempty"`
}

// Empty reports whether the delta changes nothing.
func (d Delta) Empty() bool { return len(d.Weights) == 0 && len(d.Edges) == 0 }

// vertexEdges converts the delta's edges to the hypergraph id type. All
// edges share one backing buffer (two allocations total, not one per edge —
// this sits on the per-update hot path of every session).
func (d Delta) vertexEdges() [][]hypergraph.VertexID {
	out := make([][]hypergraph.VertexID, len(d.Edges))
	total := 0
	for _, e := range d.Edges {
		total += len(e)
	}
	buf := make([]hypergraph.VertexID, 0, total)
	for i, e := range d.Edges {
		start := len(buf)
		for _, v := range e {
			buf = append(buf, hypergraph.VertexID(v))
		}
		out[i] = buf[start:len(buf):len(buf)]
	}
	return out
}

// UpdateStats describes what one Session.Update did.
type UpdateStats struct {
	// NewVertices and NewEdges count the delta's additions.
	NewVertices, NewEdges int
	// CoveredOnArrival counts new edges already stabbed by the current
	// cover; they need no solving and carry zero dual.
	CoveredOnArrival int
	// ResidualEdges and ResidualVertices size the residual instance the
	// warm-started solve actually ran on.
	ResidualEdges, ResidualVertices int
	// Joined counts vertices that entered the cover, of total AddedWeight.
	Joined      int
	AddedWeight int64
	// Iterations and Rounds are the residual solve's distributed cost
	// (zero when nothing was uncovered).
	Iterations, Rounds int
}

// ErrSessionClosed is returned by operations on a closed session.
var ErrSessionClosed = errors.New("distcover: session closed")

// Session holds a solved instance together with its live primal/dual state
// and accepts incremental delta batches. Instead of re-solving from
// scratch, Update runs the level algorithm only on the residual instance —
// the uncovered new edges and their incident vertices — warm-started with
// the dual load each vertex already carries. The algorithm's monotonicity
// makes this sound: the cover only grows, the accumulated duals remain a
// feasible packing, and after any number of batches
//
//	Weight ≤ f·(1+ε) · DualLowerBound ≤ f·(1+ε) · OPT
//
// where f is the current rank (CertifiedBound reports the factor). The
// clean per-solve (f+ε) guarantee relaxes to f(1+ε) only because vertices
// that joined under an earlier, smaller rank paid the earlier threshold.
//
// The default execution path is the lockstep simulator (like Solve).
// WithFlatEngine routes the initial solve and every residual re-solve
// through the chunk-parallel flat runner instead (bit-identical results,
// wall-clock scaling with cores). Give a CONGEST engine option —
// WithSequentialEngine, WithParallelEngine, WithShardedEngine,
// WithTCPEngine — to run both as the real message protocol on that engine;
// the residual network contains only the dirty vertices and edges, so on
// the sharded engine only the shards that received new work step at all.
//
// Sessions are safe for concurrent use; updates serialize internally.
type Session struct {
	mu  sync.Mutex
	cfg solveConfig
	g   *hypergraph.Hypergraph

	inCover     []bool
	coverWeight int64
	load        []float64 // per-vertex Σ_{e∋v} δ(e) across all solves
	dual        []float64 // per-edge δ(e); 0 for edges covered on arrival
	dualValue   float64
	epsilon     float64 // effective ε of the latest solve (FApprox resolves it)

	updates    int
	iterations int
	rounds     int
	maxLevel   int
	congest    *CongestStats // cumulative; nil on the simulator path

	remap  []int // scratch: full vertex id -> residual id, -1 when unmapped
	closed bool
}

// NewSession solves the instance and returns a session holding its state,
// ready for Update batches.
func NewSession(inst *Instance, opts ...Option) (*Session, error) {
	if inst == nil {
		return nil, ErrNilInstance
	}
	cfg := optConfig(opts)
	s := &Session{cfg: cfg, g: inst.g}
	var res *core.Result
	var err error
	switch {
	case len(cfg.clusterPeers) > 0 || cfg.clusterParts > 0:
		res, err = clusterRun(s.g, cfg, nil)
	case cfg.congest:
		stop := s.cfg.startSpan(cfg.congestEngineName())
		var metrics congest.Metrics
		res, metrics, err = core.RunCongest(s.g, s.cfg.core, cfg.buildEngine(), congest.Options{Validate: true})
		stop()
		if err == nil {
			s.congest = &CongestStats{}
			s.addCongest(metrics)
		}
	case cfg.flat:
		stop := s.cfg.startSpan("flat")
		res, err = core.RunFlat(s.g, s.cfg.core, cfg.parallelism)
		stop()
	default:
		stop := s.cfg.startSpan("sim")
		res, err = core.Run(s.g, s.cfg.core)
		stop()
	}
	if err != nil {
		return nil, fmt.Errorf("distcover: session: %w", err)
	}
	n, m := s.g.NumVertices(), s.g.NumEdges()
	s.inCover = append([]bool(nil), res.InCover...)
	s.coverWeight = res.CoverWeight
	s.load = make([]float64, n)
	s.dual = append([]float64(nil), res.Dual...)
	s.dualValue = res.DualValue
	for e := 0; e < m; e++ {
		for _, v := range s.g.Edge(hypergraph.EdgeID(e)) {
			s.load[v] += res.Dual[e]
		}
	}
	s.epsilon = res.Epsilon
	s.iterations = res.Iterations
	s.rounds = res.Rounds
	s.maxLevel = res.MaxLevel
	s.remap = make([]int, n)
	for i := range s.remap {
		s.remap[i] = -1
	}
	return s, nil
}

// Update applies one delta batch: the instance is extended (with the
// canonical content hash maintained incrementally), new edges already
// stabbed by the cover are absorbed for free, and the rest are solved as a
// warm-started residual instance whose result is merged into the session
// state. The cover, dual value and certificate only ever grow.
func (s *Session) Update(d Delta) (*UpdateStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrSessionClosed
	}
	newG, err := s.g.Extend(d.Weights, d.vertexEdges())
	if err != nil {
		return nil, fmt.Errorf("distcover: session update: %w", err)
	}
	stats := &UpdateStats{NewVertices: len(d.Weights), NewEdges: len(d.Edges)}
	n0, m0 := s.g.NumVertices(), s.g.NumEdges()

	// Partition the new edges into covered-on-arrival and residual.
	var resEdges []int // full edge ids
	for e := m0; e < newG.NumEdges(); e++ {
		stabbed := false
		for _, v := range newG.Edge(hypergraph.EdgeID(e)) {
			if int(v) < n0 && s.inCover[v] {
				stabbed = true
				break
			}
		}
		if stabbed {
			stats.CoveredOnArrival++
		} else {
			resEdges = append(resEdges, e)
		}
	}

	var res *core.Result
	var orig []int // residual id -> full vertex id
	var rg *hypergraph.Hypergraph
	if len(resEdges) > 0 {
		// Compact the residual vertices with the reusable remap scratch.
		for len(s.remap) < newG.NumVertices() {
			s.remap = append(s.remap, -1)
		}
		for _, e := range resEdges {
			for _, v := range newG.Edge(hypergraph.EdgeID(e)) {
				if s.remap[v] < 0 {
					s.remap[v] = len(orig)
					orig = append(orig, int(v))
				}
			}
		}
		b := hypergraph.NewBuilder(len(orig), len(resEdges))
		for _, v := range orig {
			b.AddVertex(newG.Weight(hypergraph.VertexID(v)))
		}
		local := make([]hypergraph.VertexID, 0, newG.Rank())
		for _, e := range resEdges {
			local = local[:0]
			for _, v := range newG.Edge(hypergraph.EdgeID(e)) {
				local = append(local, hypergraph.VertexID(s.remap[v]))
			}
			b.AddEdge(local...)
		}
		for _, v := range orig {
			s.remap[v] = -1 // reset scratch for the next update
		}
		rg, err = b.Build()
		if err == nil {
			carry := make([]float64, len(orig))
			for i, v := range orig {
				if v < n0 {
					carry[i] = s.load[v]
				}
			}
			switch {
			case len(s.cfg.clusterPeers) > 0 || s.cfg.clusterParts > 0:
				// The residual instance plus carried loads is exactly the
				// compact session delta the peers receive; the full base
				// instance never re-crosses the wire (and with no peers the
				// partitions run in-process over shared memory).
				res, err = clusterRun(rg, s.cfg, carry)
			case s.cfg.congest:
				// The CONGEST bit budget is a property of the whole system,
				// not of the (small) residual sub-network: messages carry
				// weights of the full instance, so size the O(log n) budget
				// from it.
				copts := congest.Options{
					Validate:  true,
					BitBudget: congest.LogBudget(newG.NumVertices() + newG.NumEdges()),
				}
				stop := s.cfg.startSpan(s.cfg.congestEngineName())
				var metrics congest.Metrics
				res, metrics, err = core.RunResidualCongest(rg, s.cfg.core, carry,
					s.cfg.buildEngine(), copts)
				stop()
				if err == nil {
					s.addCongest(metrics)
				}
			case s.cfg.flat:
				stop := s.cfg.startSpan("flat")
				res, err = core.RunResidualFlat(rg, s.cfg.core, carry, s.cfg.parallelism)
				stop()
			default:
				stop := s.cfg.startSpan("sim")
				res, err = core.RunResidual(rg, s.cfg.core, carry)
				stop()
			}
		}
		if err != nil {
			return nil, fmt.Errorf("distcover: session update: %w", err)
		}
	}

	// Commit: instance, grown state vectors, merged residual result.
	s.g = newG
	for i := 0; i < stats.NewVertices; i++ {
		s.inCover = append(s.inCover, false)
		s.load = append(s.load, 0)
	}
	for i := 0; i < stats.NewEdges; i++ {
		s.dual = append(s.dual, 0)
	}
	if res != nil {
		stats.ResidualEdges = len(resEdges)
		stats.ResidualVertices = len(orig)
		for lv, ov := range orig {
			if res.InCover[lv] {
				s.inCover[ov] = true
				w := newG.Weight(hypergraph.VertexID(ov))
				s.coverWeight += w
				stats.Joined++
				stats.AddedWeight += w
			}
		}
		for le, fe := range resEdges {
			delta := res.Dual[le]
			s.dual[fe] = delta
			s.dualValue += delta
			for _, lv := range rg.Edge(hypergraph.EdgeID(le)) {
				s.load[orig[lv]] += delta
			}
		}
		s.epsilon = res.Epsilon
		s.iterations += res.Iterations
		s.rounds += res.Rounds
		if res.MaxLevel > s.maxLevel {
			s.maxLevel = res.MaxLevel
		}
		stats.Iterations = res.Iterations
		stats.Rounds = res.Rounds
	}
	s.updates++
	return stats, nil
}

// SessionState is a consistent point-in-time snapshot of a session, taken
// atomically with respect to concurrent updates: the Solution is guaranteed
// to cover exactly the instance identified by Hash and described by Stats.
type SessionState struct {
	Solution       *Solution
	Hash           string
	Stats          Stats
	Updates        int
	CertifiedBound float64
	Congest        *CongestStats // nil on the simulator path
}

// State returns a consistent snapshot under one lock acquisition. Callers
// that read several aspects of a live session (the coverd session handlers)
// must use it instead of combining the individual accessors, whose separate
// lock acquisitions can interleave with an update.
func (s *Session) State() SessionState {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SessionState{
		Solution: s.solutionLocked(),
		Hash:     s.g.Hash(),
		Stats: Stats{
			Vertices:     s.g.NumVertices(),
			Edges:        s.g.NumEdges(),
			Rank:         s.g.Rank(),
			MaxDegree:    s.g.MaxDegree(),
			WeightSpread: s.g.WeightSpread(),
		},
		Updates:        s.updates,
		CertifiedBound: s.certifiedBoundLocked(),
	}
	if s.congest != nil {
		cp := *s.congest
		st.Congest = &cp
	}
	return st
}

// Solution returns the current cumulative solution: the cover over the full
// instance as updated so far, the total dual lower bound, and the realized
// certificate RatioBound = Weight / DualLowerBound (≤ CertifiedBound).
// Iterations and Rounds accumulate across the initial solve and all
// residual solves.
func (s *Session) Solution() *Solution {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.solutionLocked()
}

func (s *Session) solutionLocked() *Solution {
	sol := &Solution{
		Weight:         s.coverWeight,
		DualLowerBound: s.dualValue,
		Epsilon:        s.epsilon,
		Iterations:     s.iterations,
		Rounds:         s.rounds,
		MaxLevel:       s.maxLevel,
		LevelCap:       core.ZLevels(s.g.Rank(), s.epsilonOrDefault()),
	}
	for v, in := range s.inCover {
		if in {
			sol.Cover = append(sol.Cover, v)
		}
	}
	switch {
	case s.dualValue > 0:
		sol.RatioBound = float64(s.coverWeight) / s.dualValue
	case s.coverWeight == 0:
		sol.RatioBound = 1
	default:
		sol.RatioBound = math.Inf(1)
	}
	return sol
}

// CertifiedBound returns the approximation factor the session's certificate
// guarantees for its current state: f·(1+ε) with f the current rank. Every
// Solution().RatioBound the session ever reports stays at or below it.
func (s *Session) CertifiedBound() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.certifiedBoundLocked()
}

func (s *Session) certifiedBoundLocked() float64 {
	f := s.g.Rank()
	if f < 1 {
		f = 1
	}
	return float64(f) * (1 + s.epsilonOrDefault())
}

func (s *Session) epsilonOrDefault() float64 {
	if s.epsilon > 0 {
		return s.epsilon
	}
	return 1
}

// Instance returns the current full instance (base plus all applied
// deltas). The returned value shares the session's immutable hypergraph.
func (s *Session) Instance() *Instance {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &Instance{g: s.g}
}

// Hash returns the canonical content hash of the current instance. It is
// maintained incrementally across updates and always equals the hash a
// from-scratch build of the same instance would produce.
func (s *Session) Hash() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.g.Hash()
}

// MemoryBytes estimates the session's heap footprint: the CSR arrays of
// the current instance plus the per-vertex and per-edge state vectors the
// session carries between updates. The coverd session registry uses this
// estimate for byte-budgeted eviction, so mixed instance sizes are bounded
// by actual memory rather than a session count.
func (s *Session) MemoryBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	// inCover is 1 byte per vertex; load, dual and remap are 8.
	state := int64(len(s.inCover)) + 8*int64(len(s.load)+len(s.dual)+len(s.remap))
	return s.g.MemoryBytes() + state
}

// SetClusterPeers repoints a cluster session (one opened with
// WithClusterPeers) at a new set of peer processes, keeping the accumulated
// primal/dual state. This is the recovery path after ErrPeerLost: a failed
// Update commits nothing, so once the lost peer is restarted — or replaced
// by a different address — the same delta can be retried here. Calling it
// on a non-cluster session turns the session's residual re-solves into
// cluster solves from the next Update on.
func (s *Session) SetClusterPeers(addrs ...string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg.clusterPeers = append([]string(nil), addrs...)
}

// Updates returns the number of applied delta batches.
func (s *Session) Updates() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.updates
}

// Congest returns the cumulative communication metrics when the session
// runs on a CONGEST engine, nil on the simulator path.
func (s *Session) Congest() *CongestStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.congest == nil {
		return nil
	}
	cp := *s.congest
	return &cp
}

// Close marks the session closed; subsequent updates fail. It exists so
// pools of sessions (the coverd registry) can invalidate evicted entries.
func (s *Session) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}

func (s *Session) addCongest(m congest.Metrics) {
	s.congest.Rounds += m.Rounds
	s.congest.Messages += m.Messages
	s.congest.TotalBits += m.TotalBits
	if m.MaxMessageBits > s.congest.MaxMessageBits {
		s.congest.MaxMessageBits = m.MaxMessageBits
	}
	s.congest.WireBytes += m.WireBytes
}

// Extend returns a new instance equal to in plus the delta, validating it
// the same way NewInstance does. Sessions maintain their instance this way
// internally; the standalone helper exists for callers (and tests) that
// need the same-instance equivalence, e.g. to compare an incrementally
// built session against a from-scratch solve.
func (in *Instance) Extend(d Delta) (*Instance, error) {
	g, err := in.g.Extend(d.Weights, d.vertexEdges())
	if err != nil {
		return nil, fmt.Errorf("distcover: %w", err)
	}
	return &Instance{g: g}, nil
}
