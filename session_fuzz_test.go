package distcover

import (
	"bytes"
	"encoding/json"
	"testing"
)

// deltaEqual compares deltas up to the nil-vs-empty slice distinction JSON
// cannot represent (omitempty drops empty slices, so they re-decode as nil).
func deltaEqual(a, b Delta) bool {
	if len(a.Weights) != len(b.Weights) || len(a.Edges) != len(b.Edges) {
		return false
	}
	for i := range a.Weights {
		if a.Weights[i] != b.Weights[i] {
			return false
		}
	}
	for i := range a.Edges {
		if len(a.Edges[i]) != len(b.Edges[i]) {
			return false
		}
		for j := range a.Edges[i] {
			if a.Edges[i][j] != b.Edges[i][j] {
				return false
			}
		}
	}
	return true
}

// FuzzSessionDelta throws arbitrary bytes at the delta codec and the
// session update path: any bytes that decode as a Delta must round-trip
// through the JSON codec, must never panic Session.Update, and — when the
// update is accepted — must leave the incrementally maintained instance
// hash identical to a from-scratch canonicalization of the same instance.
func FuzzSessionDelta(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"weights":[3],"edges":[[0,4]]}`))
	f.Add([]byte(`{"edges":[[0,1],[2,3,4]]}`))
	f.Add([]byte(`{"weights":[1,2,3]}`))
	f.Add([]byte(`{"edges":[[]]}`))
	f.Add([]byte(`{"weights":[-1],"edges":[[9999]]}`))
	f.Add([]byte(`{"weights":[10],"edges":[[5,5,5],[0]]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var d Delta
		if err := json.Unmarshal(data, &d); err != nil {
			return
		}
		if len(d.Weights) > 1000 || len(d.Edges) > 1000 {
			return // keep per-exec cost bounded
		}
		// Codec round trip: encode → decode → identical delta.
		enc, err := json.Marshal(d)
		if err != nil {
			t.Fatalf("marshal decoded delta: %v", err)
		}
		var d2 Delta
		if err := json.Unmarshal(enc, &d2); err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if !deltaEqual(d, d2) {
			t.Fatalf("delta round trip diverges: %#v vs %#v", d, d2)
		}

		baseW := []int64{5, 2, 7, 3, 4}
		baseE := [][]int{{0, 1}, {1, 2, 3}, {3, 4}}
		inst, err := NewInstance(baseW, baseE)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewSession(inst)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Update(d); err != nil {
			return // invalid deltas must be rejected, never applied halfway
		}
		// Hash must equal a from-scratch build of the extended instance.
		full, err := inst.Extend(d)
		if err != nil {
			t.Fatalf("Update accepted what Extend rejects: %v", err)
		}
		var buf bytes.Buffer
		if _, err := full.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		rebuilt, err := ReadInstance(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if s.Hash() != rebuilt.Hash() {
			t.Fatalf("incremental hash %s != re-canonicalized hash %s", s.Hash(), rebuilt.Hash())
		}
		if !s.Instance().IsCover(s.Solution().Cover) {
			t.Fatal("session cover invalid after fuzz delta")
		}
	})
}
