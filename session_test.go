package distcover

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
)

func sessionBaseInstance(t *testing.T) *Instance {
	t.Helper()
	inst, err := NewInstance(
		[]int64{7, 3, 9, 2, 8, 5, 4, 6, 1, 10},
		[][]int{{0, 1, 2}, {2, 3, 4}, {4, 5, 6}, {6, 7, 8}, {8, 9, 0}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestSessionBasicFlow(t *testing.T) {
	inst := sessionBaseInstance(t)
	s, err := NewSession(inst, WithEpsilon(0.5))
	if err != nil {
		t.Fatal(err)
	}
	base, err := Solve(inst, WithEpsilon(0.5))
	if err != nil {
		t.Fatal(err)
	}
	sol := s.Solution()
	if sol.Weight != base.Weight || sol.DualLowerBound != base.DualLowerBound {
		t.Fatalf("initial session state (%d, %g) != Solve (%d, %g)",
			sol.Weight, sol.DualLowerBound, base.Weight, base.DualLowerBound)
	}

	st, err := s.Update(Delta{
		Weights: []int64{4, 2},
		Edges:   [][]int{{1, 3, 10}, {10, 11}, {0, 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.NewVertices != 2 || st.NewEdges != 3 {
		t.Fatalf("delta accounting: %+v", st)
	}
	if st.CoveredOnArrival+st.ResidualEdges != 3 {
		t.Fatalf("every new edge must be covered or residual: %+v", st)
	}
	sol = s.Solution()
	if !s.Instance().IsCover(sol.Cover) {
		t.Fatalf("cover %v does not cover updated instance", sol.Cover)
	}
	if sol.RatioBound > s.CertifiedBound()*(1+1e-9) {
		t.Fatalf("ratio %g exceeds certificate %g", sol.RatioBound, s.CertifiedBound())
	}
	if s.Updates() != 1 {
		t.Fatalf("updates = %d", s.Updates())
	}
	if s.Hash() != s.Instance().Hash() {
		t.Fatal("session hash diverges from instance hash")
	}
}

func TestSessionEmptyAndCoveredDeltas(t *testing.T) {
	inst := sessionBaseInstance(t)
	s, err := NewSession(inst)
	if err != nil {
		t.Fatal(err)
	}
	before := s.Solution()
	if _, err := s.Update(Delta{}); err != nil {
		t.Fatal(err)
	}
	cover := before.Cover
	if len(cover) == 0 {
		t.Fatal("expected non-empty cover")
	}
	// An edge containing a cover vertex is absorbed with no solving.
	st, err := s.Update(Delta{Edges: [][]int{{cover[0], (cover[0] + 1) % 10}}})
	if err != nil {
		t.Fatal(err)
	}
	if st.CoveredOnArrival != 1 || st.ResidualEdges != 0 || st.Iterations != 0 {
		t.Fatalf("covered-on-arrival edge triggered work: %+v", st)
	}
	after := s.Solution()
	if after.Weight != before.Weight || after.DualLowerBound != before.DualLowerBound {
		t.Fatal("trivial deltas changed the solution")
	}
}

func TestSessionRejectsBadDelta(t *testing.T) {
	s, err := NewSession(sessionBaseInstance(t))
	if err != nil {
		t.Fatal(err)
	}
	cases := []Delta{
		{Edges: [][]int{{}}},         // empty edge
		{Edges: [][]int{{0, 99}}},    // out of range
		{Weights: []int64{0}},        // non-positive weight
		{Weights: []int64{-3}},       // negative weight
		{Edges: [][]int{{-1, 0}}},    // negative vertex
		{Edges: [][]int{{0, 1}, {}}}, // one bad edge poisons the batch
	}
	before := s.Solution()
	for i, d := range cases {
		if _, err := s.Update(d); err == nil {
			t.Errorf("case %d: bad delta accepted", i)
		}
	}
	after := s.Solution()
	if after.Weight != before.Weight || s.Updates() != 0 {
		t.Fatal("rejected deltas must not change session state")
	}
}

func TestSessionClose(t *testing.T) {
	s, err := NewSession(sessionBaseInstance(t))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := s.Update(Delta{Edges: [][]int{{0, 1}}}); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("got %v, want ErrSessionClosed", err)
	}
}

func TestSessionCongestEngines(t *testing.T) {
	inst := sessionBaseInstance(t)
	ref, err := NewSession(inst, WithEpsilon(0.5))
	if err != nil {
		t.Fatal(err)
	}
	deltas := []Delta{
		{Edges: [][]int{{1, 3}, {3, 5, 7}}},
		{Weights: []int64{6}, Edges: [][]int{{9, 10}, {2, 10}}},
		{Edges: [][]int{{5, 9}}},
	}
	for _, d := range deltas {
		if _, err := ref.Update(d); err != nil {
			t.Fatal(err)
		}
	}
	for name, opt := range map[string]Option{
		"sequential": WithSequentialEngine(),
		"parallel":   WithParallelEngine(),
		"sharded":    WithShardedEngine(),
	} {
		s, err := NewSession(inst, WithEpsilon(0.5), opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, d := range deltas {
			if _, err := s.Update(d); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		got, want := s.Solution(), ref.Solution()
		if got.Weight != want.Weight || got.DualLowerBound != want.DualLowerBound {
			t.Errorf("%s session (%d, %g) != simulator session (%d, %g)",
				name, got.Weight, got.DualLowerBound, want.Weight, want.DualLowerBound)
		}
		if s.Congest() == nil || s.Congest().Messages == 0 {
			t.Errorf("%s: congest metrics not accumulated", name)
		}
	}
	if ref.Congest() != nil {
		t.Error("simulator session should have no congest metrics")
	}
}

// TestSessionMatchesFromScratchCertificate drives a session through random
// deltas and checks after every batch that the incremental state stays
// within the certificate of a from-scratch solve of the identical instance.
func TestSessionMatchesFromScratchCertificate(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	inst := sessionBaseInstance(t)
	s, err := NewSession(inst)
	if err != nil {
		t.Fatal(err)
	}
	cur := inst
	n := 10
	for batch := 0; batch < 8; batch++ {
		var d Delta
		for i := 0; i < rng.Intn(2); i++ {
			d.Weights = append(d.Weights, 1+rng.Int63n(20))
		}
		total := n + len(d.Weights)
		for i := 0; i < 1+rng.Intn(4); i++ {
			k := 2 + rng.Intn(2)
			var e []int
			for j := 0; j < k; j++ {
				e = append(e, rng.Intn(total))
			}
			d.Edges = append(d.Edges, e)
		}
		n = total
		if _, err := s.Update(d); err != nil {
			t.Fatal(err)
		}
		cur, err = cur.Extend(d)
		if err != nil {
			t.Fatal(err)
		}
		if s.Hash() != cur.Hash() {
			t.Fatalf("batch %d: hash mismatch", batch)
		}
		scratch, err := Solve(cur)
		if err != nil {
			t.Fatal(err)
		}
		sol := s.Solution()
		if !cur.IsCover(sol.Cover) {
			t.Fatalf("batch %d: invalid incremental cover", batch)
		}
		bound := s.CertifiedBound()
		if sol.RatioBound > bound*(1+1e-9) {
			t.Fatalf("batch %d: ratio %g exceeds certificate %g", batch, sol.RatioBound, bound)
		}
		// Both DualLowerBounds bound OPT from below, so each solution's
		// weight is bounded by its certificate times the other's dual too.
		if w := float64(sol.Weight); w > bound*scratch.DualLowerBound*(1+1e-9) {
			t.Fatalf("batch %d: incremental weight %g vs scratch dual %g breaks certificate %g",
				batch, w, scratch.DualLowerBound, bound)
		}
	}
}

func TestSessionConcurrentUpdates(t *testing.T) {
	s, err := NewSession(sessionBaseInstance(t))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				// Edges over existing vertices only, so batches commute.
				if _, err := s.Update(Delta{Edges: [][]int{{(w + i) % 10, (w + i + 3) % 10}}}); err != nil {
					t.Error(err)
					return
				}
				s.Solution()
				s.Hash()
			}
		}(w)
	}
	wg.Wait()
	if s.Updates() != 40 {
		t.Fatalf("updates = %d, want 40", s.Updates())
	}
	sol := s.Solution()
	if !s.Instance().IsCover(sol.Cover) {
		t.Fatal("invalid cover after concurrent updates")
	}
}
