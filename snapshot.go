package distcover

import (
	"fmt"

	"distcover/internal/hypergraph"
)

// SessionSnapshot is the complete serializable state of a Session: the
// current instance (base plus all applied deltas) and the accumulated
// primal/dual vectors and counters. Snapshot and RestoreSession round-trip
// it losslessly — the restored session's State(), Solution() and
// certificate are bit-identical to the original's, and subsequent Updates
// behave exactly as they would have on the original (the engine-equivalence
// property extends across a snapshot/restore boundary).
//
// The type marshals to stable JSON and is the payload coverd embeds in its
// durable snapshot files (see docs/PROTOCOL.md); it is equally usable for
// application-level checkpointing of long-lived library sessions.
type SessionSnapshot struct {
	Weights     []int64       `json:"weights"`
	Edges       [][]int       `json:"edges"`
	InCover     []bool        `json:"in_cover"`
	Load        []float64     `json:"load"`
	Dual        []float64     `json:"dual"`
	CoverWeight int64         `json:"cover_weight"`
	DualValue   float64       `json:"dual_value"`
	Epsilon     float64       `json:"epsilon"`
	Updates     int           `json:"updates"`
	Iterations  int           `json:"iterations"`
	Rounds      int           `json:"rounds"`
	MaxLevel    int           `json:"max_level"`
	Congest     *CongestStats `json:"congest,omitempty"`
}

// Snapshot captures the session's full state under one lock acquisition,
// consistent with respect to concurrent Updates. The snapshot owns its
// memory — later updates to the session do not alias into it.
func (s *Session) Snapshot() (*SessionSnapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrSessionClosed
	}
	n, m := s.g.NumVertices(), s.g.NumEdges()
	snap := &SessionSnapshot{
		Weights:     make([]int64, n),
		Edges:       make([][]int, m),
		InCover:     append([]bool(nil), s.inCover...),
		Load:        append([]float64(nil), s.load...),
		Dual:        append([]float64(nil), s.dual...),
		CoverWeight: s.coverWeight,
		DualValue:   s.dualValue,
		Epsilon:     s.epsilon,
		Updates:     s.updates,
		Iterations:  s.iterations,
		Rounds:      s.rounds,
		MaxLevel:    s.maxLevel,
	}
	for v := 0; v < n; v++ {
		snap.Weights[v] = s.g.Weight(hypergraph.VertexID(v))
	}
	for e := 0; e < m; e++ {
		vs := s.g.Edge(hypergraph.EdgeID(e))
		edge := make([]int, len(vs))
		for i, v := range vs {
			edge[i] = int(v)
		}
		snap.Edges[e] = edge
	}
	if s.congest != nil {
		cp := *s.congest
		snap.Congest = &cp
	}
	return snap, nil
}

// RestoreSession rebuilds a live session from a snapshot without re-solving
// anything: the instance is reconstructed (its canonical content hash is
// identical to the original's) and the primal/dual state is installed
// directly. The options choose the execution path for future Updates
// exactly as in NewSession — they need not match the options the
// snapshotted session ran under, because every engine is bit-identical. A
// cluster session is typically restored with its flat-engine equivalent
// first and re-pointed via SetClusterPeers once peers are reachable.
func RestoreSession(snap *SessionSnapshot, opts ...Option) (*Session, error) {
	if snap == nil {
		return nil, fmt.Errorf("distcover: restore: nil snapshot")
	}
	n, m := len(snap.Weights), len(snap.Edges)
	if len(snap.InCover) != n || len(snap.Load) != n {
		return nil, fmt.Errorf("distcover: restore: state vectors sized %d/%d for %d vertices",
			len(snap.InCover), len(snap.Load), n)
	}
	if len(snap.Dual) != m {
		return nil, fmt.Errorf("distcover: restore: %d duals for %d edges", len(snap.Dual), m)
	}
	inst, err := NewInstance(snap.Weights, snap.Edges)
	if err != nil {
		return nil, fmt.Errorf("distcover: restore: %w", err)
	}
	cfg := optConfig(opts)
	s := &Session{
		cfg:         cfg,
		g:           inst.g,
		inCover:     append([]bool(nil), snap.InCover...),
		coverWeight: snap.CoverWeight,
		load:        append([]float64(nil), snap.Load...),
		dual:        append([]float64(nil), snap.Dual...),
		dualValue:   snap.DualValue,
		epsilon:     snap.Epsilon,
		updates:     snap.Updates,
		iterations:  snap.Iterations,
		rounds:      snap.Rounds,
		maxLevel:    snap.MaxLevel,
	}
	if snap.Congest != nil {
		cp := *snap.Congest
		s.congest = &cp
	} else if cfg.congest {
		// Restored onto a CONGEST engine: start cumulative metrics fresh so
		// the first residual solve has somewhere to accumulate.
		s.congest = &CongestStats{}
	}
	s.remap = make([]int, inst.g.NumVertices())
	for i := range s.remap {
		s.remap[i] = -1
	}
	return s, nil
}
