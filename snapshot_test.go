package distcover_test

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"distcover"
)

// snapInstance builds a random instance and a stream of deltas with a
// deterministic generator.
func snapInstance(t *testing.T, seed int64, n, m int) (*distcover.Instance, []distcover.Delta) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	weights := make([]int64, n)
	for i := range weights {
		weights[i] = 1 + rng.Int63n(100)
	}
	edges := make([][]int, m)
	for i := range edges {
		k := 2 + rng.Intn(2)
		e := map[int]bool{}
		for len(e) < k {
			e[rng.Intn(n)] = true
		}
		edges[i] = make([]int, 0, k)
		for v := range e {
			edges[i] = append(edges[i], v)
		}
	}
	inst, err := distcover.NewInstance(weights, edges)
	if err != nil {
		t.Fatal(err)
	}
	var deltas []distcover.Delta
	total := n
	for b := 0; b < 3; b++ {
		var d distcover.Delta
		for i := 0; i < 10; i++ {
			d.Weights = append(d.Weights, 1+rng.Int63n(100))
		}
		grown := total + len(d.Weights)
		for i := 0; i < 25; i++ {
			k := 2 + rng.Intn(2)
			e := map[int]bool{}
			for len(e) < k {
				e[rng.Intn(grown)] = true
			}
			var edge []int
			for v := range e {
				edge = append(edge, v)
			}
			d.Edges = append(d.Edges, edge)
		}
		total = grown
		deltas = append(deltas, d)
	}
	return inst, deltas
}

func requireSameState(t *testing.T, label string, a, b distcover.SessionState) {
	t.Helper()
	if a.Hash != b.Hash {
		t.Fatalf("%s: hash %s vs %s", label, a.Hash, b.Hash)
	}
	if !reflect.DeepEqual(a.Solution, b.Solution) {
		t.Fatalf("%s: solutions diverge:\n got %+v\nwant %+v", label, a.Solution, b.Solution)
	}
	if a.Updates != b.Updates || a.CertifiedBound != b.CertifiedBound || a.Stats != b.Stats {
		t.Fatalf("%s: metadata diverges", label)
	}
}

// TestSessionSnapshotRoundTrip: snapshot → JSON → restore reproduces the
// session bit for bit, and updates applied after the restore match updates
// applied to the uninterrupted original.
func TestSessionSnapshotRoundTrip(t *testing.T) {
	inst, deltas := snapInstance(t, 404, 80, 240)
	sess, err := distcover.NewSession(inst, distcover.WithFlatEngine())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Update(deltas[0]); err != nil {
		t.Fatal(err)
	}

	snap, err := sess.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded distcover.SessionSnapshot
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	restored, err := distcover.RestoreSession(&decoded, distcover.WithFlatEngine())
	if err != nil {
		t.Fatal(err)
	}
	requireSameState(t, "after restore", restored.State(), sess.State())

	for i, d := range deltas[1:] {
		sa, err := sess.Update(d)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := restored.Update(d)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sa, sb) {
			t.Fatalf("update %d stats diverge:\n got %+v\nwant %+v", i, sb, sa)
		}
		requireSameState(t, "after post-restore update", restored.State(), sess.State())
	}
	bound := restored.CertifiedBound()
	if sol := restored.Solution(); sol.RatioBound > bound {
		t.Fatalf("certificate violated after restore: %f > %f", sol.RatioBound, bound)
	}
}

// TestSessionSnapshotEngineSwap: a snapshot taken on one engine restores
// onto another and continues bit-identically — the property that makes
// flat-restore-then-SetClusterPeers recovery sound.
func TestSessionSnapshotEngineSwap(t *testing.T) {
	inst, deltas := snapInstance(t, 77, 60, 180)
	simSess, err := distcover.NewSession(inst)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := simSess.Update(deltas[0]); err != nil {
		t.Fatal(err)
	}
	snap, err := simSess.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	flatSess, err := distcover.RestoreSession(snap, distcover.WithFlatEngine())
	if err != nil {
		t.Fatal(err)
	}
	congSess, err := distcover.RestoreSession(snap, distcover.WithSequentialEngine())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range deltas[1:] {
		if _, err := simSess.Update(d); err != nil {
			t.Fatal(err)
		}
		if _, err := flatSess.Update(d); err != nil {
			t.Fatal(err)
		}
		if _, err := congSess.Update(d); err != nil {
			t.Fatal(err)
		}
	}
	simState := simSess.State()
	requireSameState(t, "flat vs sim", flatSess.State(), simState)
	st := congSess.State()
	// The message protocol's round accounting differs from the lockstep
	// simulator's; covers, duals and certificate must still match exactly.
	st.Congest = nil
	st.Solution.Rounds = simState.Solution.Rounds
	requireSameState(t, "congest vs sim", st, simState)
	if congSess.Congest() == nil {
		t.Fatal("congest session restored from sim snapshot lost its metrics")
	}
}

// TestRestoreSessionValidation: malformed snapshots are rejected with
// errors, not panics.
func TestRestoreSessionValidation(t *testing.T) {
	if _, err := distcover.RestoreSession(nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
	bad := &distcover.SessionSnapshot{
		Weights: []int64{1, 2}, InCover: []bool{true}, Load: []float64{0, 0},
	}
	if _, err := distcover.RestoreSession(bad); err == nil {
		t.Fatal("mis-sized in_cover accepted")
	}
	bad = &distcover.SessionSnapshot{
		Weights: []int64{1, 2}, InCover: []bool{false, false}, Load: []float64{0, 0},
		Edges: [][]int{{0, 1}}, Dual: nil,
	}
	if _, err := distcover.RestoreSession(bad); err == nil {
		t.Fatal("mis-sized dual accepted")
	}
	bad = &distcover.SessionSnapshot{
		Weights: []int64{1, -5}, InCover: []bool{false, false}, Load: []float64{0, 0},
	}
	if _, err := distcover.RestoreSession(bad); err == nil {
		t.Fatal("invalid instance accepted")
	}
}
