package distcover_test

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"distcover"
)

// telemetryTestInstance builds a fixed mid-size instance with the same
// LCG the alloc bench probes use, so the measured counts are
// deterministic across machines and generator-library changes.
func telemetryTestInstance(t *testing.T) *distcover.Instance {
	t.Helper()
	const n, m = 400, 800
	weights := make([]int64, n)
	edges := make([][]int, m)
	state := uint64(0x9E3779B97F4A7C15)
	next := func(bound int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(bound))
	}
	for v := range weights {
		weights[v] = int64(1 + next(1000))
	}
	for e := range edges {
		edges[e] = []int{next(n), next(n), next(n)}
	}
	inst, err := distcover.NewInstance(weights, edges)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// TestTelemetryDisabledZeroAllocOverhead is the alloc companion to the
// goroutine leak tests: with tracing off (the default), the telemetry
// hooks in the flat runner must not cost a single allocation — including
// when the telemetry options are passed but disabled (nil recorder/
// tracer), which exercises the option plumbing and the typed-nil-
// interface guards.
func TestTelemetryDisabledZeroAllocOverhead(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are nondeterministic under -race: sync.Pool sheds Puts randomly")
	}
	inst := telemetryTestInstance(t)
	const workers = 4
	flatOpts := []distcover.Option{
		distcover.WithFlatEngine(), distcover.WithSolverParallelism(workers),
	}
	solve := func(extra ...distcover.Option) func() {
		opts := append(append([]distcover.Option(nil), flatOpts...), extra...)
		return func() {
			if _, err := distcover.Solve(inst, opts...); err != nil {
				panic(err)
			}
		}
	}

	base := testing.AllocsPerRun(10, solve())
	withNilTelemetry := testing.AllocsPerRun(10, solve(
		distcover.WithTracer(nil), distcover.WithTelemetry(nil), distcover.WithLogger(nil),
	))
	if withNilTelemetry != base {
		t.Fatalf("disabled telemetry options cost allocations: %v with nil telemetry vs %v base",
			withNilTelemetry, base)
	}
}

// TestTelemetryRecorderDoesNotPerturbSolve asserts tracing is
// observation-only: a recorded flat solve returns the bit-identical
// solution, fills the report, and leaves no goroutines behind.
func TestTelemetryRecorderDoesNotPerturbSolve(t *testing.T) {
	inst := telemetryTestInstance(t)
	opts := []distcover.Option{
		distcover.WithFlatEngine(), distcover.WithSolverParallelism(4),
	}
	want, err := distcover.Solve(inst, opts...)
	if err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	rec := distcover.NewTraceRecorder("t-perturb")
	got, err := distcover.Solve(inst, append(opts, distcover.WithTelemetry(rec))...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Cover, want.Cover) || got.Weight != want.Weight ||
		got.DualLowerBound != want.DualLowerBound {
		t.Fatalf("recorded solve diverges from plain solve:\n%+v\nvs\n%+v", got, want)
	}

	rep := rec.Report()
	if rep.TraceID != "t-perturb" || rep.Engine != "flat" {
		t.Fatalf("report identity wrong: %+v", rep)
	}
	if rep.TotalSeconds <= 0 || len(rep.Iterations) == 0 {
		t.Fatalf("report empty: %+v", rep)
	}
	var phaseTotal float64
	for _, s := range rep.PhaseSeconds {
		phaseTotal += s
	}
	if phaseTotal <= 0 {
		t.Fatalf("no phase timings recorded: %+v", rep.PhaseSeconds)
	}

	// The recorder is synchronous; tracing must not leave goroutines
	// behind (give the flat worker pool a moment to park).
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutines leaked by traced solve: %d before, %d after", before, now)
	}
}
