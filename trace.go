package distcover

import (
	"log/slog"

	"distcover/internal/telemetry"
)

// This file is the public face of the solve-telemetry layer
// (internal/telemetry): an opt-in per-solve trace that breaks a run down
// into per-iteration phase timings (vertex/edge/gather, chunk imbalance
// on the flat engine), per-peer exchange latencies and wire volume on
// the cluster engine, and round/message totals on the CONGEST engines.
//
//	rec := distcover.NewTraceRecorder("")
//	sol, err := distcover.Solve(inst, distcover.WithFlatEngine(),
//	    distcover.WithTelemetry(rec))
//	report := rec.Report() // JSON-serializable phase/round breakdown
//
// Tracing is strictly opt-in: without WithTelemetry/WithTracer the
// solvers only ever test a nil field, so the default path's exactly
// gated allocation counts are unchanged.

// Tracer is the hook interface the engines invoke at phase boundaries;
// see TraceRecorder for the standard implementation. Custom
// implementations (e.g. a metrics registry adapter) attach with
// WithTracer and must be safe for concurrent use.
type Tracer = telemetry.Tracer

// TraceRecorder accumulates telemetry hooks into a TraceReport. One
// recorder may span several solves (a session's initial solve plus its
// updates); spans accumulate.
type TraceRecorder = telemetry.Recorder

// TraceReport is the JSON trace report; see the field docs in
// internal/telemetry.
type TraceReport = telemetry.Report

// IterationTiming is one per-iteration row of a TraceReport.
type IterationTiming = telemetry.IterationTiming

// PeerTraceStats is one per-peer row of a TraceReport.
type PeerTraceStats = telemetry.PeerStats

// NewTraceRecorder returns a recorder for WithTelemetry. traceID
// correlates the solve across coordinator and peer logs of a cluster
// run; empty generates a fresh random id.
func NewTraceRecorder(traceID string) *TraceRecorder {
	return telemetry.NewRecorder(traceID)
}

// WithTelemetry attaches a trace recorder to the solve: every engine
// reports phase timings into it, cluster solves add per-peer exchange
// latency and frame accounting, and its trace id rides the cluster wire
// protocol so coordinator and peer logs correlate. Read the result with
// rec.Report().
func WithTelemetry(rec *TraceRecorder) Option {
	return optionFunc(func(c *solveConfig) { c.recorder = rec })
}

// WithTracer attaches a raw telemetry hook sink in addition to (or
// instead of) a recorder — the coverd server routes its Prometheus
// histogram adapter through this. Most callers want WithTelemetry.
func WithTracer(t Tracer) Option {
	return optionFunc(func(c *solveConfig) { c.tracer = t })
}

// WithLogger routes structured solve logs — today the cluster
// coordinator's per-solve and per-peer lines, each carrying the solve's
// trace_id — to the given slog logger. nil (the default) is silent.
func WithLogger(l *slog.Logger) Option {
	return optionFunc(func(c *solveConfig) { c.logger = l })
}
